//! Multi-tenant cluster serving: SLO classes, admission control, and
//! priority-aware scheduling over the routed replay engine.
//!
//! [`TenantServingSim`] wraps the same group/step machinery as
//! [`ClusterServingSim`](crate::ClusterServingSim) with three tenancy
//! layers in front of it:
//!
//! * **Admission control at the router** — each tenant draws from a
//!   deterministic [`TokenBucket`] parameterized by its class
//!   (`rate_rps`, `burst`); an empty bucket rejects the arrival before
//!   it touches any queue. Behind the bucket, a load shedder watches
//!   the run's time-weighted mean waiting depth (all groups pooled) and
//!   past the threshold either rejects sheddable arrivals or defers
//!   them once by a fixed delay.
//! * **Priority-aware scheduling** — arrivals enter the shared kernel
//!   timeline at their class priority (`0..=63`; step completions fire
//!   at a reserved higher band), and the waiting queue is kept sorted
//!   by class priority with FIFO order inside a class. A
//!   single-default-class config therefore reproduces the plain
//!   engine's event ordering bit for bit — pinned by a differential
//!   test below.
//! * **Multi-model pods** — a class may name a model-zoo alias; the
//!   pod's `dp` groups are partitioned round-robin across the distinct
//!   models, each model gets its own router over its groups, and all
//!   per-model pricers share one single-flight [`PlanCache`] (cache
//!   keys carry the model name, so entries never collide).
//!
//! Every disposition is terminal and disjoint — `admitted + rejected +
//! deferred == arrivals`, per tenant — and the emitted report stays
//! byte-identical at any thread count.

use std::sync::Arc;

use serde::Serialize;

use elk_baselines::Design;
use elk_hw::SystemConfig;
use elk_model::{zoo, Phase, TransformerConfig};
use elk_obs::Obs;
use elk_serve::{
    jain_index, next_step, LatencyStats, PlanCache, RequestOutcome, RequestTrace, Router,
    RouterPolicy, ShedPolicy, StepPlan, TenancyConfig, TenantReport, TokenBucket,
    MAX_CLASS_PRIORITY,
};
use elk_sim_core::{EventQueue, QueueStat};
use elk_units::Seconds;

use crate::pricing::StepPricer;
use crate::serve::PendingStep;
use crate::serve::{summarize_groups, ClusterServeConfig, ClusterServingReport, Group, InFlight};
use crate::ClusterError;

/// Priority band for the tenancy engine's step completions: strictly
/// above every admissible class priority, so an arrival can never
/// overtake a completion at the same instant (mirroring the plain
/// engine's `PRIO_ARRIVAL < PRIO_STEP_DONE` ordering).
const PRIO_TENANT_STEP_DONE: u8 = MAX_CLASS_PRIORITY + 1;

/// Aggregated result of one multi-tenant cluster serving run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenancyServingReport {
    /// The whole-run aggregate in the plain cluster-report shape. For a
    /// single-default-class config this serializes byte-identically to
    /// the plain engine's report on the same inputs.
    pub base: ClusterServingReport,
    /// Requests admitted directly at first offer.
    pub admitted: usize,
    /// Requests dropped by the rate limiter or the load shedder.
    pub rejected: usize,
    /// Requests deferred once by the load shedder (these complete).
    pub deferred: usize,
    /// Per-tenant slices, in first-appearance order of the trace's
    /// tenant ids.
    pub tenants: Vec<TenantReport>,
    /// Jain fairness index over the per-tenant goodput shares.
    pub jain_fairness: f64,
}

/// Typed events on the tenancy engine's shared timeline.
enum Ev {
    /// The request at this trace index reaches the front-end router.
    Arrival(usize),
    /// A shed-deferred request is re-offered (served unconditionally).
    Deferred(usize),
    /// This group's in-flight scheduler step completes.
    StepDone {
        /// Index of the group whose step finished.
        gid: usize,
    },
}

/// Terminal admission disposition of one request.
#[derive(Clone, Copy, PartialEq)]
enum Disposition {
    Admitted,
    Rejected,
    Deferred,
}

/// Trace-driven multi-tenant serving simulator for one pod.
///
/// Owns one `StepPricer` per distinct class model, all sharing a
/// single-flight [`PlanCache`], so runs across designs, policies, and
/// models reuse compiled stages.
#[derive(Debug)]
pub struct TenantServingSim {
    config: ClusterServeConfig,
    tenancy: TenancyConfig,
    /// Distinct models served by the pod; index 0 is the base model.
    models: Vec<TransformerConfig>,
    /// For each class, the index into `models` it is served by.
    class_model: Vec<usize>,
    pricers: Vec<StepPricer>,
    obs: Obs,
}

impl TenantServingSim {
    /// Creates a simulator for `config` + `tenancy` on the pod `system`.
    ///
    /// Class model aliases resolve through [`elk_model::zoo::by_name`]
    /// and inherit the base model's layer count, so every model passes
    /// the same structural plan validation the pod was sized for.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when the tenancy config is
    /// inconsistent, an alias is unknown, the plan does not fit some
    /// class model, or `dp` is smaller than the distinct model count.
    pub fn new(
        system: SystemConfig,
        config: ClusterServeConfig,
        tenancy: TenancyConfig,
    ) -> Result<Self, ClusterError> {
        config.batch.validate();
        tenancy.validate().map_err(ClusterError::Invalid)?;

        let mut models = vec![config.model.clone()];
        let mut class_model = Vec::with_capacity(tenancy.classes.len());
        for class in &tenancy.classes {
            let idx = match &class.model {
                None => 0,
                Some(alias) => {
                    let mut resolved = zoo::by_name(alias).map_err(ClusterError::Invalid)?;
                    resolved.layers = config.model.layers;
                    match models.iter().position(|m| m.name == resolved.name) {
                        Some(i) => i,
                        None => {
                            models.push(resolved);
                            models.len() - 1
                        }
                    }
                }
            };
            class_model.push(idx);
        }
        if (config.plan.dp as usize) < models.len() {
            return Err(ClusterError::Invalid(format!(
                "plan dp {} cannot host {} distinct models (need dp >= models)",
                config.plan.dp,
                models.len()
            )));
        }
        for model in &models {
            config
                .plan
                .validate_structure(&system, model)
                .map_err(ClusterError::Invalid)?;
        }
        // One pricer per model over one shared single-flight cache:
        // keys carry the model name, so multi-model pods share compile
        // work without collisions.
        let cache = Arc::new(PlanCache::new().with_threads(config.threads));
        let pricers = models
            .iter()
            .map(|m| {
                StepPricer::with_cache(
                    &system,
                    m.clone(),
                    config.plan,
                    config.sim,
                    Arc::clone(&cache),
                )
            })
            .collect();
        Ok(TenantServingSim {
            config,
            tenancy,
            models,
            class_model,
            pricers,
            obs: Obs::null(),
        })
    }

    /// Attaches an observation handle: kernel dispatch spans, admitted
    /// request lanes (via the shared cluster summary), and
    /// tenant-tagged disposition markers (admitted / rejected /
    /// deferred) on each sampled request's lane.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The serve configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterServeConfig {
        &self.config
    }

    /// The tenancy policy.
    #[must_use]
    pub fn tenancy(&self) -> &TenancyConfig {
        &self.tenancy
    }

    /// Distinct models served by the pod (index 0 is the base model).
    #[must_use]
    pub fn models(&self) -> &[TransformerConfig] {
        &self.models
    }

    /// Cumulative plan-cache counters (across all runs and models).
    #[must_use]
    pub fn cache_stats(&self) -> elk_serve::CacheStats {
        self.pricers[0].cache_stats()
    }

    /// Serves `trace` under `design`, dispatching each model's share of
    /// the pod with `policy`. `tenants` names the tenant of each
    /// request, indexed by trace position (the side channel
    /// [`elk_trace::TraceFile::tenant_assignments`] produces); an empty
    /// slice puts every request under the `"default"` tenant.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Invalid`] when `tenants` is non-empty but does
    /// not match the trace length; compile failures propagate as
    /// [`ClusterError::Compile`].
    ///
    /// [`elk_trace::TraceFile::tenant_assignments`]:
    /// https://docs.rs/elk-trace
    #[allow(clippy::too_many_lines)]
    pub fn run(
        &mut self,
        design: Design,
        policy: RouterPolicy,
        trace: &RequestTrace,
        tenants: &[String],
    ) -> Result<TenancyServingReport, ClusterError> {
        if !tenants.is_empty() && tenants.len() != trace.len() {
            return Err(ClusterError::Invalid(format!(
                "tenant assignments ({}) do not match the trace ({} requests)",
                tenants.len(),
                trace.len()
            )));
        }
        let reqs = &trace.requests;

        // Distinct tenants in first-appearance order, plus each
        // request's tenant index. Untagged traces collapse to one
        // "default" tenant.
        let default_tenant = ["default".to_string()];
        let named: &[String] = if tenants.is_empty() && !reqs.is_empty() {
            &default_tenant
        } else {
            tenants
        };
        let mut tenant_ids: Vec<String> = Vec::new();
        let tix: Vec<usize> = (0..reqs.len())
            .map(|i| {
                let name = if tenants.is_empty() {
                    &named[0]
                } else {
                    &named[i]
                };
                match tenant_ids.iter().position(|t| t == name) {
                    Some(p) => p,
                    None => {
                        tenant_ids.push(name.clone());
                        tenant_ids.len() - 1
                    }
                }
            })
            .collect();
        let tenant_class: Vec<usize> = tenant_ids
            .iter()
            .map(|t| self.tenancy.class_index_of(t))
            .collect();
        let req_prio: Vec<u8> = tix
            .iter()
            .map(|&t| self.tenancy.classes[tenant_class[t]].priority)
            .collect();

        // Per-tenant token buckets (None = the class is unlimited).
        let mut buckets: Vec<Option<TokenBucket>> = tenant_class
            .iter()
            .map(|&c| {
                let class = &self.tenancy.classes[c];
                class.rate_rps.map(|r| TokenBucket::new(r, class.burst))
            })
            .collect();

        // Group partition: groups round-robin across distinct models,
        // one router per model over its own groups.
        let dp = self.config.plan.dp as usize;
        let n_models = self.models.len();
        let model_groups: Vec<Vec<usize>> = (0..n_models)
            .map(|m| (0..dp).filter(|g| g % n_models == m).collect())
            .collect();
        let group_model: Vec<usize> = (0..dp).map(|g| g % n_models).collect();
        let mut routers: Vec<Router> = model_groups
            .iter()
            .map(|gs| Router::new(policy, gs.len()))
            .collect();

        let mut groups: Vec<Group> = (0..dp).map(|_| Group::new()).collect();
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; reqs.len()];
        let mut disposition: Vec<Option<Disposition>> = vec![None; reqs.len()];

        // Pooled waiting depth for the load shedder: a time-weighted
        // integral over every group's waiting queue together.
        let mut shed_depth = QueueStat::new();
        let mut total_waiting: usize = 0;

        let mut q: EventQueue<Ev> = EventQueue::new();
        // Every admissible class priority dispatches as an "arrival"
        // (deferred re-offers included); only the reserved band above
        // them is a step completion.
        let mut classes: Vec<(u8, &str)> = req_prio
            .iter()
            .map(|&p| (p, "arrival"))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        classes.push((PRIO_TENANT_STEP_DONE, "step_done"));
        q.observe(self.obs.clone(), "tenancy/kernel", &classes);
        for (idx, req) in reqs.iter().enumerate() {
            q.schedule(req.arrival, req_prio[idx], Ev::Arrival(idx));
        }

        while let Some(fired) = q.pop() {
            let now = q.now();
            match fired.event {
                Ev::Arrival(idx) => {
                    let class = &self.tenancy.classes[tenant_class[tix[idx]]];
                    let shed = self.tenancy.shed_queue_depth.and_then(|threshold| {
                        if !class.sheddable || now.as_secs() <= 0.0 {
                            return None;
                        }
                        let mean = shed_depth.area_until(now) / now.as_secs();
                        (mean > threshold).then_some(self.tenancy.shed_policy)
                    });
                    let admitted_by_bucket =
                        buckets[tix[idx]].as_mut().is_none_or(|b| b.try_take(now));
                    if !admitted_by_bucket {
                        disposition[idx] = Some(Disposition::Rejected);
                    } else {
                        match shed {
                            Some(ShedPolicy::Reject) => {
                                disposition[idx] = Some(Disposition::Rejected);
                            }
                            Some(ShedPolicy::Defer) => {
                                disposition[idx] = Some(Disposition::Deferred);
                                q.schedule_after(
                                    Seconds::new(self.tenancy.defer_s),
                                    req_prio[idx],
                                    Ev::Deferred(idx),
                                );
                            }
                            None => {
                                disposition[idx] = Some(Disposition::Admitted);
                                admit(
                                    idx,
                                    now,
                                    &req_prio,
                                    &mut routers,
                                    &model_groups,
                                    &mut groups,
                                    &mut total_waiting,
                                    &mut shed_depth,
                                    self.class_model[tenant_class[tix[idx]]],
                                );
                            }
                        }
                    }
                }
                Ev::Deferred(idx) => {
                    // One-shot backpressure: the re-offer is served
                    // unconditionally (its disposition stays Deferred).
                    admit(
                        idx,
                        now,
                        &req_prio,
                        &mut routers,
                        &model_groups,
                        &mut groups,
                        &mut total_waiting,
                        &mut shed_depth,
                        self.class_model[tenant_class[tix[idx]]],
                    );
                }
                Ev::StepDone { gid } => {
                    let group = &mut groups[gid];
                    match group.pending.take().expect("StepDone implies a step") {
                        PendingStep::Prefill { batch } => {
                            group.prefill_steps += 1;
                            for idx in batch {
                                outcomes[idx] = Some(RequestOutcome {
                                    id: reqs[idx].id,
                                    replica: gid,
                                    arrival: reqs[idx].arrival,
                                    first_token: now,
                                    completion: now,
                                    output_len: reqs[idx].output_len,
                                });
                                if reqs[idx].output_len > 1 {
                                    group.active.push(InFlight { idx, generated: 1 });
                                }
                            }
                        }
                        PendingStep::Decode => {
                            group.decode_steps += 1;
                            group.active.retain_mut(|a| {
                                a.generated += 1;
                                let outcome = outcomes[a.idx].as_mut().expect("prefilled");
                                outcome.completion = now;
                                a.generated < reqs[a.idx].output_len
                            });
                        }
                    }
                    group.end = now;
                }
            }
            // Defer dispatch until every event at this instant has
            // fired, then scan groups in index order (deterministic).
            if q.peek_time() == Some(now) {
                continue;
            }
            for (gid, group) in groups.iter_mut().enumerate() {
                if group.pending.is_some() {
                    continue;
                }
                let prompts: Vec<u64> = group
                    .waiting
                    .iter()
                    .take(self.config.batch.max_batch as usize)
                    .map(|&i| reqs[i].prompt_len)
                    .collect();
                let Some(step) = next_step(&self.config.batch, &prompts, group.active.len()) else {
                    continue;
                };
                let pricer = &self.pricers[group_model[gid]];
                let latency = match step {
                    StepPlan::Prefill { admit } => {
                        let batch: Vec<usize> = group.waiting.drain(..admit).collect();
                        group.queue.record(now, group.waiting.len());
                        total_waiting -= batch.len();
                        shed_depth.record(now, total_waiting);
                        let longest = batch
                            .iter()
                            .map(|&i| reqs[i].prompt_len)
                            .max()
                            .expect("prefill admits >= 1");
                        let wl = self.config.batch.step_workload(
                            Phase::Prefill,
                            batch.len() as u64,
                            longest,
                        );
                        let latency = pricer
                            .split_step(design, wl)
                            .map_err(|(stage, source)| ClusterError::Compile { stage, source })?;
                        group.pending = Some(PendingStep::Prefill { batch });
                        latency
                    }
                    StepPlan::Decode => {
                        let deepest = group
                            .active
                            .iter()
                            .map(|a| reqs[a.idx].prompt_len + a.generated)
                            .max()
                            .expect("decode requires >= 1 active");
                        let wl = self.config.batch.step_workload(
                            Phase::Decode,
                            group.active.len() as u64,
                            deepest,
                        );
                        let latency = pricer
                            .split_step(design, wl)
                            .map_err(|(stage, source)| ClusterError::Compile { stage, source })?;
                        group.pending = Some(PendingStep::Decode);
                        latency
                    }
                };
                q.schedule_after(latency, PRIO_TENANT_STEP_DONE, Ev::StepDone { gid });
            }
        }

        Ok(self.summarize(
            design,
            policy,
            trace,
            &tenant_ids,
            &tix,
            &tenant_class,
            &disposition,
            outcomes,
            groups,
            (q.events_processed(), q.peak_len()),
        ))
    }

    /// Folds the run into the tenancy report: the base aggregate plus
    /// per-tenant slices and the fairness index.
    #[allow(clippy::too_many_arguments)]
    fn summarize(
        &self,
        design: Design,
        policy: RouterPolicy,
        trace: &RequestTrace,
        tenant_ids: &[String],
        tix: &[usize],
        tenant_class: &[usize],
        disposition: &[Option<Disposition>],
        outcomes: Vec<Option<RequestOutcome>>,
        groups: Vec<Group>,
        sim_events: (u64, usize),
    ) -> TenancyServingReport {
        let reqs = &trace.requests;
        if self.obs.enabled() {
            // Tenant-tagged disposition markers on each sampled
            // request's lane: the arrival→admission leg of the path.
            for (idx, d) in disposition.iter().enumerate() {
                let Some(d) = *d else { continue };
                let name = match d {
                    Disposition::Admitted => "admitted",
                    Disposition::Rejected => "rejected",
                    Disposition::Deferred => "deferred",
                };
                self.obs.counter(&format!("tenancy.{name}"), 1);
                if !self.obs.sampled(idx) {
                    continue;
                }
                let t = tix[idx];
                let args = [
                    ("tenant", tenant_ids[t].clone()),
                    ("class", self.tenancy.classes[tenant_class[t]].name.clone()),
                ];
                self.obs.instant(
                    &format!("req/{}", reqs[idx].id),
                    name,
                    reqs[idx].arrival,
                    &args,
                );
            }
        }
        for (idx, d) in disposition.iter().enumerate() {
            let d = d.expect("every arrival fired");
            debug_assert_eq!(
                outcomes[idx].is_some(),
                d != Disposition::Rejected,
                "request {idx}: disposition and completion must agree"
            );
        }
        let served_tokens: u64 = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(idx, _)| reqs[idx].output_len)
            .sum();
        let completed: Vec<RequestOutcome> = outcomes.iter().filter_map(|o| *o).collect();
        let base = summarize_groups(
            design,
            policy,
            self.config.plan,
            self.config.slo,
            trace.len(),
            served_tokens,
            groups,
            completed,
            sim_events,
            &self.obs,
        );

        let count = |t: usize, want: Disposition| {
            disposition
                .iter()
                .enumerate()
                .filter(|&(idx, &d)| tix[idx] == t && d == Some(want))
                .count()
        };
        let span = base.makespan.as_secs();
        let per_sec = |x: f64| if span > 0.0 { x / span } else { 0.0 };
        let tenants: Vec<TenantReport> = tenant_ids
            .iter()
            .enumerate()
            .map(|(t, tenant)| {
                let class = &self.tenancy.classes[tenant_class[t]];
                let done: Vec<&RequestOutcome> = outcomes
                    .iter()
                    .enumerate()
                    .filter(|&(idx, _)| tix[idx] == t)
                    .filter_map(|(_, o)| o.as_ref())
                    .collect();
                let ttft: Vec<Seconds> = done.iter().map(|o| o.ttft()).collect();
                let tpot: Vec<Seconds> = done.iter().filter_map(|o| o.tpot()).collect();
                let e2e: Vec<Seconds> = done.iter().map(|o| o.e2e()).collect();
                let met = done.iter().filter(|o| o.meets(&class.slo)).count();
                TenantReport {
                    tenant: tenant.clone(),
                    class: class.name.clone(),
                    arrivals: tix.iter().filter(|&&x| x == t).count(),
                    admitted: count(t, Disposition::Admitted),
                    rejected: count(t, Disposition::Rejected),
                    deferred: count(t, Disposition::Deferred),
                    completed: done.len(),
                    slo_attainment: if done.is_empty() {
                        0.0
                    } else {
                        met as f64 / done.len() as f64
                    },
                    goodput_rps: per_sec(met as f64),
                    ttft: LatencyStats::of(&ttft),
                    tpot: LatencyStats::of(&tpot),
                    e2e: LatencyStats::of(&e2e),
                }
            })
            .collect();
        let shares: Vec<f64> = tenants.iter().map(|t| t.goodput_rps).collect();
        TenancyServingReport {
            admitted: tenants.iter().map(|t| t.admitted).sum(),
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            deferred: tenants.iter().map(|t| t.deferred).sum(),
            jain_fairness: jain_index(&shares),
            tenants,
            base,
        }
    }
}

/// Routes an admitted request to its model's least-loaded group (per
/// the policy) and inserts it into the waiting queue priority-first,
/// FIFO within a class.
#[allow(clippy::too_many_arguments)]
fn admit(
    idx: usize,
    now: Seconds,
    req_prio: &[u8],
    routers: &mut [Router],
    model_groups: &[Vec<usize>],
    groups: &mut [Group],
    total_waiting: &mut usize,
    shed_depth: &mut QueueStat,
    model: usize,
) {
    let outstanding: Vec<usize> = model_groups[model]
        .iter()
        .map(|&g| groups[g].outstanding())
        .collect();
    let pick = routers[model].route(&outstanding);
    let gid = model_groups[model][pick];
    let group = &mut groups[gid];
    // Priority-stable insertion: before the first strictly-lower-
    // priority entry (larger number = lower priority), after every
    // equal-priority one — FIFO inside a class. With one class this is
    // exactly a push, preserving the plain engine's order.
    let prio = req_prio[idx];
    let pos = group
        .waiting
        .iter()
        .position(|&w| req_prio[w] > prio)
        .unwrap_or(group.waiting.len());
    group.waiting.insert(pos, idx);
    group.served += 1;
    group.queue.record(now, group.waiting.len());
    *total_waiting += 1;
    shed_depth.record(now, *total_waiting);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ParallelismPlan;
    use crate::serve::ClusterServingSim;
    use elk_hw::presets;
    use elk_model::{zoo, SeqBuckets};
    use elk_serve::{ArrivalProcess, BatchConfig, LengthDist, SloConfig, TenantClass, TraceConfig};

    fn tiny_config(plan: ParallelismPlan) -> ClusterServeConfig {
        let mut model = zoo::llama2_13b();
        model.layers = 2;
        ClusterServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_prefill_tokens: 2048,
                seq_buckets: SeqBuckets::new(256, 2048),
                bucket_batch: true,
            },
            ..ClusterServeConfig::new(model, plan)
        }
    }

    fn tiny_trace(requests: usize) -> RequestTrace {
        TraceConfig {
            seed: 11,
            requests,
            arrivals: ArrivalProcess::Poisson { rate_rps: 200.0 },
            prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
            output_len: LengthDist::Uniform { lo: 2, hi: 12 },
        }
        .generate()
    }

    fn cycle_tenants(trace: &RequestTrace, ids: &[&str]) -> Vec<String> {
        (0..trace.len())
            .map(|i| ids[i % ids.len()].to_string())
            .collect()
    }

    #[test]
    fn trivial_tenancy_reproduces_the_plain_engine_bit_for_bit() {
        let trace = tiny_trace(12);
        let plan = ParallelismPlan::new(2, 1, 2);
        let mut plain = ClusterServingSim::new(presets::ipu_pod4(), tiny_config(plan)).unwrap();
        let mut tenanted = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(plan),
            TenancyConfig::default(),
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let a = plain.run(Design::ElkFull, policy, &trace).unwrap();
            let b = tenanted.run(Design::ElkFull, policy, &trace, &[]).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b.base).unwrap(),
                "{policy}: a trivial tenancy layer must not perturb the engine"
            );
            assert_eq!(b.rejected, 0);
            assert_eq!(b.deferred, 0);
            assert_eq!(b.admitted, trace.len());
            assert_eq!(b.jain_fairness, 1.0, "one tenant is trivially fair");
        }
    }

    #[test]
    fn token_bucket_rejections_conserve_and_skip_the_queues() {
        let trace = tiny_trace(16);
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass {
                    rate_rps: Some(1.0),
                    burst: 2,
                    ..TenantClass::named("limited")
                },
                TenantClass::named("free"),
            ],
            tenants: vec![("t0".to_string(), "limited".to_string())],
            default_class: "free".to_string(),
            ..TenancyConfig::default()
        };
        let mut sim = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 2)),
            tenancy,
        )
        .unwrap();
        let tenants = cycle_tenants(&trace, &["t0", "t1"]);
        let r = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
            .unwrap();
        assert!(
            r.rejected > 0,
            "a 1 rps bucket must reject a 200 rps tenant"
        );
        for t in &r.tenants {
            assert_eq!(
                t.arrivals,
                t.admitted + t.rejected + t.deferred,
                "{}",
                t.tenant
            );
            assert_eq!(t.completed, t.admitted + t.deferred, "{}", t.tenant);
        }
        let free = r.tenants.iter().find(|t| t.tenant == "t1").unwrap();
        assert_eq!(free.rejected, 0, "the unlimited class never sheds");
        assert_eq!(
            r.base.completed,
            r.admitted + r.deferred,
            "rejected requests never reach a step"
        );
        assert_eq!(
            r.base.per_group_requests.iter().sum::<usize>(),
            r.base.completed,
            "groups only ever saw admitted requests"
        );
        assert!(
            r.jain_fairness < 1.0,
            "throttling one tenant shows up in fairness"
        );
    }

    #[test]
    fn priority_classes_reorder_equal_time_queues() {
        // Two tenants, premium priority 0 vs bulk priority 9. Large
        // prompts cap each prefill at 2 requests, so the queue drains
        // over several steps and priority insertion is observable: the
        // late-arriving vip pair must prefill before bulk requests that
        // arrived earlier (under FIFO they would go last).
        let mut requests = Vec::new();
        for i in 0..8u64 {
            requests.push(elk_serve::Request {
                id: i,
                arrival: Seconds::from_millis(0.5 * i as f64),
                prompt_len: 1024,
                output_len: 2,
            });
        }
        let trace = RequestTrace::from_requests(requests);
        let tenants: Vec<String> = (0..8)
            .map(|i| if i < 6 { "bulk" } else { "vip" }.to_string())
            .collect();
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass::named("premium"),
                TenantClass {
                    priority: 9,
                    ..TenantClass::named("bulk_class")
                },
            ],
            tenants: vec![("vip".to_string(), "premium".to_string())],
            default_class: "bulk_class".to_string(),
            ..TenancyConfig::default()
        };
        let mut sim = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 1)),
            tenancy,
        )
        .unwrap();
        let r = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
            .unwrap();
        let vip = r.tenants.iter().find(|t| t.tenant == "vip").unwrap();
        assert_eq!(vip.class, "premium");
        let first_token = |id: u64| {
            r.base
                .outcomes
                .iter()
                .find(|o| o.id == id)
                .unwrap()
                .first_token
        };
        let vip_last = first_token(6).max(first_token(7));
        let overtaken = (0..6).filter(|&id| first_token(id) > vip_last).count();
        assert!(
            overtaken >= 2,
            "priority must move the vip pair ahead of earlier bulk arrivals \
             (only {overtaken} bulk requests prefilled after them)"
        );
    }

    #[test]
    fn defer_policy_delays_but_completes_everything() {
        let trace = tiny_trace(16);
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass::named("premium"),
                TenantClass {
                    priority: 5,
                    sheddable: true,
                    ..TenantClass::named("best_effort")
                },
            ],
            tenants: vec![("t0".to_string(), "premium".to_string())],
            default_class: "best_effort".to_string(),
            shed_queue_depth: Some(0.05),
            shed_policy: ShedPolicy::Defer,
            defer_s: 0.2,
        };
        let mut sim = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 1)),
            tenancy,
        )
        .unwrap();
        let tenants = cycle_tenants(&trace, &["t0", "t1"]);
        let r = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
            .unwrap();
        assert!(r.deferred > 0, "pressure must defer some best-effort work");
        assert_eq!(r.rejected, 0, "defer policy never drops");
        assert_eq!(
            r.base.completed,
            trace.len(),
            "deferred work still completes"
        );
        let premium = r.tenants.iter().find(|t| t.tenant == "t0").unwrap();
        assert_eq!(
            premium.deferred, 0,
            "non-sheddable classes are never deferred"
        );
    }

    #[test]
    fn mixed_models_share_one_pod_and_one_cache() {
        let trace = tiny_trace(10);
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass::named("default"),
                TenantClass {
                    model: Some("opt30".to_string()),
                    ..TenantClass::named("opt_class")
                },
            ],
            tenants: vec![("t1".to_string(), "opt_class".to_string())],
            ..TenancyConfig::default()
        };
        let mut sim = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 2)),
            tenancy,
        )
        .unwrap();
        assert_eq!(sim.models().len(), 2);
        assert_eq!(sim.models()[1].name, "OPT-30B");
        assert_eq!(
            sim.models()[1].layers,
            sim.models()[0].layers,
            "class models inherit the pod-sized layer count"
        );
        let tenants = cycle_tenants(&trace, &["t0", "t1"]);
        let r = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
            .unwrap();
        assert_eq!(r.base.completed, 10);
        // The llama tenant lands only on even groups, the OPT tenant
        // only on odd ones (round-robin model partition).
        for o in &r.base.outcomes {
            let t = &tenants[o.id as usize];
            assert_eq!(o.replica % 2, usize::from(t == "t1"), "request {}", o.id);
        }
        let misses = sim.cache_stats().misses;
        let r2 = sim
            .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
            .unwrap();
        assert_eq!(
            sim.cache_stats().misses,
            misses,
            "second run is fully cached"
        );
        assert_eq!(r.base.outcomes, r2.base.outcomes, "replay is deterministic");
    }

    #[test]
    fn dp_must_cover_the_distinct_models() {
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass::named("default"),
                TenantClass {
                    model: Some("opt30".to_string()),
                    ..TenantClass::named("opt_class")
                },
            ],
            ..TenancyConfig::default()
        };
        let e = TenantServingSim::new(
            presets::ipu_pod4(),
            tiny_config(ParallelismPlan::new(1, 1, 1)),
            tenancy,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(e.to_string().contains("distinct models"), "{e}");
    }

    #[test]
    fn thread_count_does_not_change_tenancy_outcomes() {
        let trace = tiny_trace(10);
        let plan = ParallelismPlan::new(2, 1, 2);
        let tenancy = TenancyConfig {
            classes: vec![
                TenantClass::named("premium"),
                TenantClass {
                    priority: 7,
                    sheddable: true,
                    rate_rps: Some(50.0),
                    burst: 4,
                    ..TenantClass::named("best_effort")
                },
            ],
            tenants: vec![("t0".to_string(), "premium".to_string())],
            default_class: "best_effort".to_string(),
            shed_queue_depth: Some(0.5),
            shed_policy: ShedPolicy::Reject,
            ..TenancyConfig::default()
        };
        let tenants = cycle_tenants(&trace, &["t0", "t1", "t2"]);
        let mut seq =
            TenantServingSim::new(presets::ipu_pod4(), tiny_config(plan), tenancy.clone()).unwrap();
        let mut par = TenantServingSim::new(
            presets::ipu_pod4(),
            ClusterServeConfig {
                threads: 4,
                ..tiny_config(plan)
            },
            tenancy,
        )
        .unwrap();
        for policy in RouterPolicy::all() {
            let a = seq.run(Design::ElkFull, policy, &trace, &tenants).unwrap();
            let b = par.run(Design::ElkFull, policy, &trace, &tenants).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{policy}: tenancy reports must be byte-identical across threads"
            );
        }
    }

    #[test]
    fn admission_control_protects_premium_goodput_under_overload() {
        // Saturating burst: one group, everyone piles in at once. With
        // admission control the best-effort firehose is shed, so the
        // premium tenant's requests clear faster and meet a tight SLO.
        let trace = TraceConfig {
            seed: 5,
            requests: 40,
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 400.0,
                burst_factor: 4.0,
                period_s: 0.5,
                duty: 0.2,
            },
            prompt_len: LengthDist::Uniform { lo: 200, hi: 600 },
            output_len: LengthDist::Uniform { lo: 2, hi: 8 },
        }
        .generate();
        let tenants = cycle_tenants(&trace, &["prem", "be", "be", "be"]);
        let slo = SloConfig {
            ttft: Seconds::from_millis(400.0),
            tpot: Seconds::from_millis(60.0),
        };
        let classes = |limit: bool| TenancyConfig {
            classes: vec![
                TenantClass {
                    slo,
                    ..TenantClass::named("premium")
                },
                TenantClass {
                    priority: 9,
                    sheddable: true,
                    rate_rps: limit.then_some(30.0),
                    burst: 4,
                    slo,
                    ..TenantClass::named("best_effort")
                },
            ],
            tenants: vec![("prem".to_string(), "premium".to_string())],
            default_class: "best_effort".to_string(),
            shed_queue_depth: limit.then_some(2.0),
            shed_policy: ShedPolicy::Reject,
            ..TenancyConfig::default()
        };
        let run = |tenancy: TenancyConfig| {
            let mut sim = TenantServingSim::new(
                presets::ipu_pod4(),
                tiny_config(ParallelismPlan::new(1, 1, 1)),
                tenancy,
            )
            .unwrap();
            sim.run(Design::ElkFull, RouterPolicy::RoundRobin, &trace, &tenants)
                .unwrap()
        };
        let open = run(classes(false));
        let managed = run(classes(true));
        assert!(
            managed.rejected > 0,
            "overload must trigger admission control"
        );
        let prem = |r: &TenancyServingReport| {
            r.tenants
                .iter()
                .find(|t| t.tenant == "prem")
                .unwrap()
                .goodput_rps
        };
        assert!(
            prem(&managed) > prem(&open),
            "admission control must protect premium goodput ({} vs {})",
            prem(&managed),
            prem(&open)
        );
    }
}
