//! Property suite for the trace-file format (ISSUE 7 satellite):
//!
//! * arbitrary well-formed traces serialize → parse → serialize
//!   byte-identically (and parse back to the identical struct);
//! * corrupting any single record — negative lengths, out-of-order
//!   timestamps, unknown keys — is rejected with an error naming the
//!   offending record index.

use elk_trace::{TraceFile, TraceRecord};
use proptest::prelude::*;

/// Strategy for one record's raw material: an arrival *increment* in
/// milliseconds (so cumulative sums stay sorted), two lengths, and a
/// tenant selector.
fn record_parts() -> impl Strategy<Value = (u64, u64, u64, u8)> {
    (0u64..5_000, 1u64..4_096, 1u64..512, 0u8..4)
}

/// Builds a well-formed trace from per-record parts: arrivals are the
/// running sum of the increments, tenants cycle over a small pool.
fn assemble(parts: Vec<(u64, u64, u64, u8)>) -> TraceFile {
    let mut t = 0.0;
    let records = parts
        .into_iter()
        .map(|(dt_ms, prompt_len, output_len, tenant)| {
            t += dt_ms as f64 * 1e-3;
            TraceRecord {
                arrival_s: t,
                prompt_len,
                output_len,
                tenant: (tenant > 0).then(|| format!("t{tenant}")),
            }
        })
        .collect();
    TraceFile { records }
}

/// Replaces data line `idx` (0-based, header excluded) of a serialized
/// trace with `line`.
fn with_line(text: &str, idx: usize, line: &str) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    lines[idx + 1] = line;
    lines.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn round_trip_is_byte_identical(
        parts in prop::collection::vec(record_parts(), 0..40),
    ) {
        let trace = assemble(parts);
        let text = trace.to_jsonl();
        let parsed = TraceFile::parse(&text).expect("well-formed trace parses");
        prop_assert_eq!(&parsed, &trace, "parse must reproduce the struct");
        prop_assert_eq!(parsed.to_jsonl(), text, "re-serialization must reproduce the bytes");
    }

    #[test]
    fn negative_length_rejected_with_record_index(
        parts in prop::collection::vec(record_parts(), 1..20),
        pick in any::<u16>(),
        negated in prop::sample::select(vec!["prompt_len", "output_len"]),
    ) {
        let trace = assemble(parts);
        let idx = pick as usize % trace.len();
        let r = &trace.records[idx];
        let (p, o) = match negated {
            "prompt_len" => (format!("-{}", r.prompt_len), r.output_len.to_string()),
            _ => (r.prompt_len.to_string(), format!("-{}", r.output_len)),
        };
        let bad = format!(
            "{{\"arrival_s\":{:?},\"prompt_len\":{p},\"output_len\":{o}}}",
            r.arrival_s
        );
        let err = TraceFile::parse(&with_line(&trace.to_jsonl(), idx, &bad))
            .expect_err("negative length must be rejected")
            .to_string();
        prop_assert!(err.contains(&format!("record {idx}:")), "{}", err);
        prop_assert!(err.contains(negated), "{}", err);
    }

    #[test]
    fn out_of_order_timestamp_rejected_with_record_index(
        parts in prop::collection::vec(record_parts(), 2..20),
        pick in any::<u16>(),
        jump in 1u64..1_000_000,
    ) {
        let trace = assemble(parts);
        // Push record idx past its successor; the parser must name the
        // *successor* (the first record that goes backwards in time).
        let idx = pick as usize % (trace.len() - 1);
        let r = &trace.records[idx];
        let bumped = trace.records[idx + 1].arrival_s + jump as f64;
        let line = format!(
            "{{\"arrival_s\":{bumped:?},\"prompt_len\":{},\"output_len\":{}}}",
            r.prompt_len, r.output_len
        );
        let err = TraceFile::parse(&with_line(&trace.to_jsonl(), idx, &line))
            .expect_err("time-travel must be rejected")
            .to_string();
        prop_assert!(err.contains(&format!("record {}:", idx + 1)), "{}", err);
        prop_assert!(err.contains("time-sorted"), "{}", err);
    }

    #[test]
    fn unknown_key_rejected_with_record_index(
        parts in prop::collection::vec(record_parts(), 1..20),
        pick in any::<u16>(),
        key in prop::sample::select(vec!["user_id", "priority", "arrivalS", "Tenant"]),
    ) {
        let trace = assemble(parts);
        let idx = pick as usize % trace.len();
        let r = &trace.records[idx];
        let line = format!(
            "{{\"arrival_s\":{:?},\"prompt_len\":{},\"output_len\":{},\"{key}\":1}}",
            r.arrival_s, r.prompt_len, r.output_len
        );
        let err = TraceFile::parse(&with_line(&trace.to_jsonl(), idx, &line))
            .expect_err("unknown keys must be rejected")
            .to_string();
        prop_assert!(err.contains(&format!("record {idx}:")), "{}", err);
        prop_assert!(err.contains(&format!("unknown key \"{key}\"")), "{}", err);
    }

    #[test]
    fn conversion_preserves_counts_and_order(
        parts in prop::collection::vec(record_parts(), 0..40),
    ) {
        let trace = assemble(parts);
        let rt = trace.to_request_trace();
        prop_assert_eq!(rt.len(), trace.len());
        prop_assert_eq!(rt.total_output_tokens(), trace.total_output_tokens());
        for (id, (req, rec)) in rt.requests.iter().zip(&trace.records).enumerate() {
            prop_assert_eq!(req.id, id as u64, "ids follow record order");
            prop_assert_eq!(req.prompt_len, rec.prompt_len);
            prop_assert_eq!(req.output_len, rec.output_len);
        }
    }
}
