//! Seeded generators that emit production-shaped traces straight into
//! the [`TraceFile`] format, so synthetic and recorded demand flow
//! through the same replay path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::format::{TraceFile, TraceRecord};

/// Time-varying arrival-rate shape (requests/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateShape {
    /// Homogeneous Poisson arrivals at a constant rate.
    Constant {
        /// Arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Diurnal sinusoid: `mean * (1 + amplitude * sin(2πt / period))`.
    /// Models the day/night demand cycle production traces show.
    Diurnal {
        /// Long-run mean rate in requests per second.
        mean_rps: f64,
        /// Peak-to-mean swing, in `[0, 1)` so the rate stays positive.
        amplitude: f64,
        /// Cycle length in seconds.
        period_s: f64,
    },
    /// Square-wave burst train: the first `burst_s` seconds of every
    /// `period_s`-second window run at `burst_rps`, the rest at
    /// `base_rps`. Models thundering herds and batch-job kickoffs.
    BurstTrain {
        /// Off-burst rate in requests per second.
        base_rps: f64,
        /// In-burst rate in requests per second (`>= base_rps`).
        burst_rps: f64,
        /// Burst cycle length in seconds.
        period_s: f64,
        /// Burst duration per cycle, in `(0, period_s)`.
        burst_s: f64,
    },
}

impl RateShape {
    /// Instantaneous rate at time `t` seconds.
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            RateShape::Constant { rate_rps } => rate_rps,
            RateShape::Diurnal {
                mean_rps,
                amplitude,
                period_s,
            } => mean_rps * (1.0 + amplitude * (std::f64::consts::TAU * t / period_s).sin()),
            RateShape::BurstTrain {
                base_rps,
                burst_rps,
                period_s,
                burst_s,
            } => {
                if (t / period_s).fract() * period_s < burst_s {
                    burst_rps
                } else {
                    base_rps
                }
            }
        }
    }

    /// Upper bound on [`rate_at`](Self::rate_at) — the thinning
    /// proposal rate.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        match *self {
            RateShape::Constant { rate_rps } => rate_rps,
            RateShape::Diurnal {
                mean_rps,
                amplitude,
                ..
            } => mean_rps * (1.0 + amplitude),
            RateShape::BurstTrain {
                base_rps,
                burst_rps,
                ..
            } => base_rps.max(burst_rps),
        }
    }

    fn validate(&self) {
        match *self {
            RateShape::Constant { rate_rps } => {
                assert!(rate_rps > 0.0, "rate must be > 0");
            }
            RateShape::Diurnal {
                mean_rps,
                amplitude,
                period_s,
            } => {
                assert!(mean_rps > 0.0, "mean rate must be > 0");
                assert!(
                    (0.0..1.0).contains(&amplitude),
                    "amplitude must be in [0, 1) so the rate stays positive"
                );
                assert!(period_s > 0.0, "period must be > 0");
            }
            RateShape::BurstTrain {
                base_rps,
                burst_rps,
                period_s,
                burst_s,
            } => {
                assert!(base_rps > 0.0, "base rate must be > 0");
                assert!(burst_rps >= base_rps, "burst rate must be >= base rate");
                assert!(period_s > 0.0, "period must be > 0");
                assert!(
                    burst_s > 0.0 && burst_s < period_s,
                    "burst duration must be in (0, period)"
                );
            }
        }
    }
}

/// Per-request token-count model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Every request draws the same length.
    Fixed {
        /// The length in tokens.
        tokens: u64,
    },
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest length.
        lo: u64,
        /// Largest length.
        hi: u64,
    },
    /// Bounded Pareto: density `∝ x^-(alpha+1)` on `[lo, cap]`. Small
    /// `alpha` (≈1) gives the heavy tail production prompt lengths
    /// show — most requests short, a few near the cap.
    HeavyTail {
        /// Smallest length.
        lo: u64,
        /// Tail exponent, `> 0`; smaller is heavier.
        alpha: f64,
        /// Largest length (truncation point).
        cap: u64,
    },
}

impl LengthModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            LengthModel::Fixed { tokens } => tokens,
            LengthModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LengthModel::HeavyTail { lo, alpha, cap } => {
                // Inverse-CDF of the bounded Pareto on [lo, cap].
                let u: f64 = rng.gen_range(0.0..1.0);
                let l = lo as f64;
                let ratio = (l / cap as f64).powf(alpha);
                let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                (x.round() as u64).clamp(lo, cap)
            }
        }
    }

    fn validate(&self, what: &str) {
        let ok = match *self {
            LengthModel::Fixed { tokens } => tokens > 0,
            LengthModel::Uniform { lo, hi } => lo > 0 && lo <= hi,
            LengthModel::HeavyTail { lo, alpha, cap } => lo > 0 && lo <= cap && alpha > 0.0,
        };
        assert!(ok, "invalid {what} length model: {self:?}");
    }
}

/// Recipe for a synthetic trace file; fully determined by its `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenConfig {
    /// RNG seed — same config and seed, same bytes out.
    pub seed: u64,
    /// Number of records to generate.
    pub requests: usize,
    /// Arrival-rate shape.
    pub rate: RateShape,
    /// Prompt-length model.
    pub prompt_len: LengthModel,
    /// Output-length model.
    pub output_len: LengthModel,
    /// Number of tenants to spread requests over uniformly (ids
    /// `"t0"`..`"t{n-1}"`). `0` omits the tenant field entirely.
    pub tenants: u64,
}

impl Default for TraceGenConfig {
    /// A small smoke-test recipe: 64 requests at a constant 100 rps.
    fn default() -> Self {
        TraceGenConfig {
            seed: 0x5eed,
            requests: 64,
            rate: RateShape::Constant { rate_rps: 100.0 },
            prompt_len: LengthModel::Uniform { lo: 128, hi: 512 },
            output_len: LengthModel::Uniform { lo: 4, hi: 16 },
            tenants: 0,
        }
    }
}

impl TraceGenConfig {
    /// Generates the trace by Lewis–Shedler thinning: propose from a
    /// homogeneous process at the peak rate, accept each proposal with
    /// probability `rate(t) / peak`. Exact for any bounded-rate shape.
    ///
    /// # Panics
    ///
    /// Panics if the rate shape or a length model is ill-formed
    /// (non-positive rates, amplitude outside `[0, 1)`, zero lengths,
    /// burst longer than its period).
    #[must_use]
    pub fn generate(&self) -> TraceFile {
        self.rate.validate();
        self.prompt_len.validate("prompt");
        self.output_len.validate("output");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let peak = self.rate.peak_rate();
        let mut t = 0.0f64;
        let mut records = Vec::with_capacity(self.requests);
        for _ in 0..self.requests {
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -(1.0 - u).ln() / peak;
                if rng.gen_bool(self.rate.rate_at(t) / peak) {
                    break;
                }
            }
            records.push(TraceRecord {
                arrival_s: t,
                prompt_len: self.prompt_len.sample(&mut rng),
                output_len: self.output_len.sample(&mut rng),
                tenant: (self.tenants > 0)
                    .then(|| format!("t{}", rng.gen_range(0..=self.tenants - 1))),
            });
        }
        TraceFile { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceFile;

    fn burst_cfg(seed: u64) -> TraceGenConfig {
        TraceGenConfig {
            seed,
            requests: 500,
            rate: RateShape::BurstTrain {
                base_rps: 50.0,
                burst_rps: 500.0,
                period_s: 1.0,
                burst_s: 0.2,
            },
            prompt_len: LengthModel::HeavyTail {
                lo: 32,
                alpha: 1.1,
                cap: 2048,
            },
            output_len: LengthModel::Uniform { lo: 2, hi: 12 },
            tenants: 3,
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        assert_eq!(
            burst_cfg(7).generate().to_jsonl(),
            burst_cfg(7).generate().to_jsonl()
        );
        assert_ne!(burst_cfg(7).generate(), burst_cfg(8).generate());
    }

    #[test]
    fn generated_traces_parse_back() {
        let t = burst_cfg(3).generate();
        let back = TraceFile::parse(&t.to_jsonl()).expect("generated trace parses");
        assert_eq!(back, t);
        assert_eq!(t.len(), 500);
        assert_eq!(t.tenants().len(), 3);
    }

    #[test]
    fn burst_train_concentrates_arrivals_in_bursts() {
        let t = burst_cfg(11).generate();
        let in_burst = t
            .records
            .iter()
            .filter(|r| r.arrival_s.fract() < 0.2)
            .count();
        // 20% of the time carries 500/(500*0.2+50*0.8) ≈ 71% of load.
        assert!(
            in_burst as f64 / t.len() as f64 > 0.5,
            "only {in_burst}/{} arrivals in bursts",
            t.len()
        );
    }

    #[test]
    fn diurnal_rate_oscillates_around_mean() {
        let shape = RateShape::Diurnal {
            mean_rps: 100.0,
            amplitude: 0.5,
            period_s: 4.0,
        };
        assert!((shape.rate_at(1.0) - 150.0).abs() < 1e-9, "crest at t=P/4");
        assert!((shape.rate_at(3.0) - 50.0).abs() < 1e-9, "trough at t=3P/4");
        assert!((shape.peak_rate() - 150.0).abs() < 1e-9);
        let t = TraceGenConfig {
            rate: shape,
            requests: 2000,
            ..TraceGenConfig::default()
        }
        .generate();
        let rate = t.len() as f64 / t.duration_s();
        assert!((rate / 100.0 - 1.0).abs() < 0.15, "long-run rate {rate}");
    }

    #[test]
    fn heavy_tail_is_heavy_but_bounded() {
        let model = LengthModel::HeavyTail {
            lo: 32,
            alpha: 1.1,
            cap: 2048,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> = (0..2000).map(|_| model.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (32..=2048).contains(&s)));
        let short = samples.iter().filter(|&&s| s < 128).count();
        let long = samples.iter().filter(|&&s| s > 1024).count();
        assert!(
            short > samples.len() / 2,
            "mass should sit near lo ({short})"
        );
        assert!(long > 0, "the tail should reach past 1024");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn overdriven_diurnal_rejected() {
        let _ = TraceGenConfig {
            rate: RateShape::Diurnal {
                mean_rps: 10.0,
                amplitude: 1.0,
                period_s: 1.0,
            },
            ..TraceGenConfig::default()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "burst duration")]
    fn burst_longer_than_period_rejected() {
        let _ = TraceGenConfig {
            rate: RateShape::BurstTrain {
                base_rps: 10.0,
                burst_rps: 20.0,
                period_s: 1.0,
                burst_s: 1.5,
            },
            ..TraceGenConfig::default()
        }
        .generate();
    }
}
