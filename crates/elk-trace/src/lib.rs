//! Versioned request-trace files and production-shaped generators.
//!
//! The serving engines (`elk-serve`, `elk-cluster`) consume a
//! [`RequestTrace`](elk_serve::RequestTrace) — a time-sorted list of
//! (arrival, prompt, output) triples. This crate gives that input a
//! durable on-disk form and a family of seeded generators so recorded
//! production traces and synthetic ones flow through one path:
//!
//! * [`TraceFile`] — the JSON-lines format, version-stamped, with a
//!   strict parser whose errors name the offending record index;
//! * [`TraceGenConfig`] — seeded generators for production-shaped
//!   demand: constant-rate Poisson, diurnal sinusoids, burst trains,
//!   and bounded-Pareto heavy-tail length distributions.
//!
//! # File format (version 1)
//!
//! One JSON object per line. The first line is the header; every
//! following line is a record:
//!
//! ```text
//! {"format":"elk-trace","version":1}
//! {"arrival_s":0.0125,"prompt_len":512,"output_len":8}
//! {"arrival_s":0.0871,"prompt_len":64,"output_len":12,"tenant":"t1"}
//! ```
//!
//! Records must be sorted by `arrival_s`; lengths are positive
//! integers; `tenant` is an optional non-empty string. Unknown or
//! duplicate keys, negative lengths, non-finite times, and
//! out-of-order timestamps are all hard errors.
//!
//! ```
//! use elk_trace::{RateShape, TraceGenConfig};
//!
//! let trace = TraceGenConfig {
//!     rate: RateShape::BurstTrain {
//!         base_rps: 50.0,
//!         burst_rps: 400.0,
//!         period_s: 1.0,
//!         burst_s: 0.2,
//!     },
//!     ..TraceGenConfig::default()
//! }
//! .generate();
//! let text = trace.to_jsonl();
//! let back = elk_trace::TraceFile::parse(&text).unwrap();
//! assert_eq!(back, trace);
//! assert_eq!(back.to_request_trace().len(), trace.len());
//! ```

#![warn(missing_docs)]

mod format;
mod generate;

pub use format::{TraceError, TraceFile, TraceRecord, FORMAT_NAME, FORMAT_VERSION};
pub use generate::{LengthModel, RateShape, TraceGenConfig};
