//! The versioned JSON-lines trace format: strict parser and
//! deterministic writer.

use std::fmt;

use serde::Value;

use elk_serve::{Request, RequestTrace};
use elk_units::Seconds;

/// Value of the header's `format` key.
pub const FORMAT_NAME: &str = "elk-trace";

/// Format version this crate reads and writes.
pub const FORMAT_VERSION: u64 = 1;

/// A malformed trace file. The message names the offending record
/// index (0-based, counting data lines only) wherever one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    msg: String,
}

impl TraceError {
    fn new(msg: impl Into<String>) -> Self {
        TraceError { msg: msg.into() }
    }

    fn at(idx: usize, msg: impl fmt::Display) -> Self {
        TraceError::new(format!("record {idx}: {msg}"))
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TraceError {}

/// One request record: when it arrives and how much work it asks for.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Arrival time in seconds since trace start (non-negative,
    /// finite, non-decreasing across the file).
    pub arrival_s: f64,
    /// Prompt (prefill) length in tokens, `>= 1`.
    pub prompt_len: u64,
    /// Tokens to generate, `>= 1`.
    pub output_len: u64,
    /// Optional tenant id for multi-tenant traces (non-empty when
    /// present). Carried through generation and parsing; the serving
    /// engines currently treat all tenants alike.
    pub tenant: Option<String>,
}

/// A parsed (or generated) trace file: the version header plus its
/// records in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Records sorted by `arrival_s` (ties keep file order).
    pub records: Vec<TraceRecord>,
}

impl TraceFile {
    /// Serializes to JSON-lines text: one header line, one line per
    /// record, trailing newline. Byte-deterministic — field order is
    /// fixed and floats use the shortest round-tripping form, so
    /// `parse(to_jsonl())` reproduces the exact same bytes again.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Value::Map(vec![
            ("format".to_string(), Value::Str(FORMAT_NAME.to_string())),
            ("version".to_string(), Value::U64(FORMAT_VERSION)),
        ]);
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for r in &self.records {
            let mut entries = vec![
                ("arrival_s".to_string(), Value::F64(r.arrival_s)),
                ("prompt_len".to_string(), Value::U64(r.prompt_len)),
                ("output_len".to_string(), Value::U64(r.output_len)),
            ];
            if let Some(t) = &r.tenant {
                entries.push(("tenant".to_string(), Value::Str(t.clone())));
            }
            let line = serde_json::to_string(&Value::Map(entries)).expect("record serializes");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses JSON-lines text, validating every record strictly.
    ///
    /// # Errors
    ///
    /// Errors on a missing or unsupported header, malformed JSON,
    /// unknown or duplicate keys, non-positive lengths, negative or
    /// non-finite arrival times, and out-of-order timestamps — each
    /// naming the offending record index.
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| TraceError::new("empty trace file: missing header line"))?;
        parse_header(header)?;
        let mut records = Vec::new();
        for (idx, line) in lines.enumerate() {
            let v: Value = serde_json::from_str(line)
                .map_err(|e| TraceError::at(idx, format!("malformed JSON: {e}")))?;
            let rec = parse_record(idx, &v)?;
            if let Some(prev) = records.last().map(|r: &TraceRecord| r.arrival_s) {
                if rec.arrival_s < prev {
                    return Err(TraceError::at(
                        idx,
                        format!(
                            "arrival_s {} precedes record {}'s {} — records must be time-sorted",
                            rec.arrival_s,
                            idx - 1,
                            prev
                        ),
                    ));
                }
            }
            records.push(rec);
        }
        Ok(TraceFile { records })
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct tenant ids present, in first-appearance order.
    #[must_use]
    pub fn tenants(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.records {
            if let Some(t) = &r.tenant {
                if !seen.iter().any(|s| s == t) {
                    seen.push(t.clone());
                }
            }
        }
        seen
    }

    /// Total prompt tokens across all records.
    #[must_use]
    pub fn total_prompt_tokens(&self) -> u64 {
        self.records.iter().map(|r| r.prompt_len).sum()
    }

    /// Total output tokens across all records.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.records.iter().map(|r| r.output_len).sum()
    }

    /// Arrival time of the last record (`0.0` for an empty trace).
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.arrival_s)
    }

    /// Tenant id for each record, in record order (`"default"` where a
    /// record carries none). Because [`to_request_trace`] assigns
    /// request ids in record order and records are time-sorted, this
    /// vector is indexable by request id — it is the side channel the
    /// tenancy-aware engines consume alongside the [`RequestTrace`].
    ///
    /// [`to_request_trace`]: Self::to_request_trace
    #[must_use]
    pub fn tenant_assignments(&self) -> Vec<String> {
        self.records
            .iter()
            .map(|r| r.tenant.clone().unwrap_or_else(|| "default".to_string()))
            .collect()
    }

    /// Converts to the serving engines' input type. Ids are assigned
    /// in record order; tenant ids travel out of band via
    /// [`tenant_assignments`](Self::tenant_assignments), indexed by
    /// request id.
    #[must_use]
    pub fn to_request_trace(&self) -> RequestTrace {
        RequestTrace::from_requests(
            self.records
                .iter()
                .enumerate()
                .map(|(id, r)| Request {
                    id: id as u64,
                    arrival: Seconds::new(r.arrival_s),
                    prompt_len: r.prompt_len,
                    output_len: r.output_len,
                })
                .collect(),
        )
    }
}

/// Field names a record line may carry, alphabetical — quoted by
/// unknown-key errors.
const RECORD_KEYS: [&str; 4] = ["arrival_s", "output_len", "prompt_len", "tenant"];

fn parse_header(line: &str) -> Result<(), TraceError> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| TraceError::new(format!("malformed header line: {e}")))?;
    let Value::Map(entries) = &v else {
        return Err(TraceError::new(format!(
            "header must be a JSON object, got {}",
            v.kind()
        )));
    };
    for (key, _) in entries {
        if key != "format" && key != "version" {
            return Err(TraceError::new(format!(
                "unknown header key {key:?} (valid keys: format, version)"
            )));
        }
    }
    match v.get("format") {
        Some(Value::Str(s)) if s == FORMAT_NAME => {}
        Some(other) => {
            return Err(TraceError::new(format!(
                "header format must be {FORMAT_NAME:?}, got {other:?}"
            )))
        }
        None => return Err(TraceError::new("header is missing the \"format\" key")),
    }
    match v.get("version") {
        Some(Value::U64(n)) if *n == FORMAT_VERSION => Ok(()),
        Some(Value::U64(n)) => Err(TraceError::new(format!(
            "unsupported trace version {n} (this build reads version {FORMAT_VERSION})"
        ))),
        Some(other) => Err(TraceError::new(format!(
            "header version must be an integer, got {}",
            other.kind()
        ))),
        None => Err(TraceError::new("header is missing the \"version\" key")),
    }
}

fn parse_record(idx: usize, v: &Value) -> Result<TraceRecord, TraceError> {
    let Value::Map(entries) = v else {
        return Err(TraceError::at(
            idx,
            format!("record must be a JSON object, got {}", v.kind()),
        ));
    };
    for (i, (key, _)) in entries.iter().enumerate() {
        if !RECORD_KEYS.contains(&key.as_str()) {
            return Err(TraceError::at(
                idx,
                format!(
                    "unknown key {key:?} (valid keys: {})",
                    RECORD_KEYS.join(", ")
                ),
            ));
        }
        if entries[..i].iter().any(|(k, _)| k == key) {
            return Err(TraceError::at(idx, format!("duplicate key {key:?}")));
        }
    }
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| TraceError::at(idx, format!("missing required key {key:?}")))
    };
    let arrival_s = match field("arrival_s")? {
        Value::F64(x) if x.is_finite() && *x >= 0.0 => *x,
        Value::U64(n) => *n as f64,
        other => {
            return Err(TraceError::at(
                idx,
                format!("arrival_s must be a finite non-negative number, got {other:?}"),
            ))
        }
    };
    let length = |key: &str| match field(key)? {
        Value::U64(n) if *n >= 1 => Ok(*n),
        other => Err(TraceError::at(
            idx,
            format!("{key} must be a positive integer, got {other:?}"),
        )),
    };
    let prompt_len = length("prompt_len")?;
    let output_len = length("output_len")?;
    let tenant = match v.get("tenant") {
        None => None,
        Some(Value::Str(s)) if !s.is_empty() => Some(s.clone()),
        Some(other) => {
            return Err(TraceError::at(
                idx,
                format!("tenant must be a non-empty string, got {other:?}"),
            ))
        }
    };
    Ok(TraceRecord {
        arrival_s,
        prompt_len,
        output_len,
        tenant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival_s: f64, prompt_len: u64, output_len: u64) -> TraceRecord {
        TraceRecord {
            arrival_s,
            prompt_len,
            output_len,
            tenant: None,
        }
    }

    fn small() -> TraceFile {
        TraceFile {
            records: vec![
                rec(0.0, 128, 8),
                rec(0.25, 512, 4),
                TraceRecord {
                    tenant: Some("t1".to_string()),
                    ..rec(0.25, 64, 2)
                },
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let text = small().to_jsonl();
        let back = TraceFile::parse(&text).expect("parses");
        assert_eq!(back, small());
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn header_is_versioned_and_strict() {
        let err = TraceFile::parse("").unwrap_err();
        assert!(err.to_string().contains("missing header"), "{err}");
        let err = TraceFile::parse("{\"format\":\"elk-trace\",\"version\":2}\n").unwrap_err();
        assert!(
            err.to_string().contains("unsupported trace version 2"),
            "{err}"
        );
        let err = TraceFile::parse("{\"format\":\"csv\",\"version\":1}\n").unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
        let err =
            TraceFile::parse("{\"format\":\"elk-trace\",\"version\":1,\"compressed\":true}\n")
                .unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown header key \"compressed\""),
            "{err}"
        );
    }

    #[test]
    fn errors_name_the_offending_record() {
        let head = "{\"format\":\"elk-trace\",\"version\":1}\n";
        let ok = "{\"arrival_s\":0.0,\"prompt_len\":8,\"output_len\":2}\n";

        let bad = format!("{head}{ok}{{\"arrival_s\":0.1,\"prompt_len\":-4,\"output_len\":2}}\n");
        let err = TraceFile::parse(&bad).unwrap_err().to_string();
        assert!(err.starts_with("record 1:"), "{err}");
        assert!(
            err.contains("prompt_len must be a positive integer"),
            "{err}"
        );

        let bad = format!(
            "{head}{ok}{{\"arrival_s\":0.1,\"prompt_len\":8,\"output_len\":2,\"user\":3}}\n"
        );
        let err = TraceFile::parse(&bad).unwrap_err().to_string();
        assert!(err.contains("record 1: unknown key \"user\""), "{err}");
        assert!(
            err.contains("arrival_s, output_len, prompt_len, tenant"),
            "{err}"
        );

        let bad = format!(
            "{head}{ok}{{\"arrival_s\":0.2,\"prompt_len\":8,\"prompt_len\":9,\"output_len\":2}}\n"
        );
        let err = TraceFile::parse(&bad).unwrap_err().to_string();
        assert!(
            err.contains("record 1: duplicate key \"prompt_len\""),
            "{err}"
        );

        let bad = format!(
            "{head}{{\"arrival_s\":0.5,\"prompt_len\":8,\"output_len\":2}}\n{{\"arrival_s\":0.25,\"prompt_len\":8,\"output_len\":2}}\n"
        );
        let err = TraceFile::parse(&bad).unwrap_err().to_string();
        assert!(err.starts_with("record 1:"), "{err}");
        assert!(err.contains("time-sorted"), "{err}");

        let bad = format!("{head}{ok}not json\n");
        let err = TraceFile::parse(&bad).unwrap_err().to_string();
        assert!(err.starts_with("record 1: malformed JSON"), "{err}");
    }

    #[test]
    fn zero_lengths_and_bad_times_rejected() {
        let head = "{\"format\":\"elk-trace\",\"version\":1}\n";
        for (line, want) in [
            (
                "{\"arrival_s\":0.0,\"prompt_len\":0,\"output_len\":2}",
                "prompt_len must be a positive integer",
            ),
            (
                "{\"arrival_s\":0.0,\"prompt_len\":4,\"output_len\":0}",
                "output_len must be a positive integer",
            ),
            (
                "{\"arrival_s\":-0.5,\"prompt_len\":4,\"output_len\":2}",
                "arrival_s must be a finite non-negative number",
            ),
            (
                "{\"arrival_s\":\"NaN\",\"prompt_len\":4,\"output_len\":2}",
                "arrival_s must be a finite non-negative number",
            ),
            (
                "{\"prompt_len\":4,\"output_len\":2}",
                "missing required key \"arrival_s\"",
            ),
            (
                "{\"arrival_s\":0.0,\"prompt_len\":4,\"output_len\":2,\"tenant\":\"\"}",
                "tenant must be a non-empty string",
            ),
        ] {
            let err = TraceFile::parse(&format!("{head}{line}\n"))
                .unwrap_err()
                .to_string();
            assert!(err.contains("record 0"), "{line} -> {err}");
            assert!(err.contains(want), "{line} -> {err}");
        }
    }

    #[test]
    fn converts_to_request_trace_in_record_order() {
        let t = small().to_request_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[0].id, 0);
        assert_eq!(t.requests[1].arrival, Seconds::new(0.25));
        assert_eq!(t.requests[2].prompt_len, 64);
        assert_eq!(small().total_prompt_tokens(), 128 + 512 + 64);
        assert_eq!(small().total_output_tokens(), 14);
        assert_eq!(small().tenants(), vec!["t1".to_string()]);
        assert!((small().duration_s() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tenant_assignments_align_with_request_ids() {
        let t = small();
        assert_eq!(
            t.tenant_assignments(),
            vec![
                "default".to_string(),
                "default".to_string(),
                "t1".to_string()
            ]
        );
        // Request ids are record indices, so the vector indexes by id
        // even for ties in arrival time (from_requests sorts stably by
        // (arrival, id)).
        let rt = t.to_request_trace();
        for (i, r) in rt.requests.iter().enumerate() {
            assert_eq!(r.id as usize, i);
        }
    }

    #[test]
    fn integer_arrival_times_accepted() {
        let text = "{\"format\":\"elk-trace\",\"version\":1}\n{\"arrival_s\":3,\"prompt_len\":4,\"output_len\":2}\n";
        let t = TraceFile::parse(text).expect("integer arrival parses");
        assert!((t.records[0].arrival_s - 3.0).abs() < 1e-12);
    }
}
