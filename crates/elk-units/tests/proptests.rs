//! Property tests for the unit types: arithmetic laws the rest of the
//! workspace silently relies on.

use proptest::prelude::*;

use elk_units::{ByteRate, Bytes, FlopRate, Flops, Seconds};

proptest! {
    #[test]
    fn bytes_div_is_a_covering(total in 1u64..1_000_000, parts in 1u64..512) {
        // Splitting into `parts` rounded-up pieces always covers the total.
        let per = Bytes::new(total) / parts;
        prop_assert!(per * parts >= Bytes::new(total));
        // And never over-covers by more than one piece minus one byte per part.
        prop_assert!((per * parts).get() - total < parts);
    }

    #[test]
    fn bytes_scale_monotone(total in 0u64..1_000_000, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let t = Bytes::new(total);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.scale(lo) <= t.scale(hi));
        prop_assert!(t.scale(1.0) >= t);
    }

    #[test]
    fn transfer_time_round_trip(vol in 1u64..1_000_000_000, gib in 1.0f64..1000.0) {
        let rate = ByteRate::gib_per_sec(gib);
        let t = rate.transfer_time(Bytes::new(vol));
        let back = rate.bytes_in(t);
        // Round trip within one byte of rounding slack per f64 step.
        prop_assert!((back.get() as i64 - vol as i64).abs() <= 1);
    }

    #[test]
    fn seconds_sub_never_negative(a in 0.0f64..1e3, b in 0.0f64..1e3) {
        let d = Seconds::new(a) - Seconds::new(b);
        prop_assert!(d >= Seconds::ZERO);
        if a >= b {
            prop_assert!((d.as_secs() - (a - b)).abs() < 1e-9 * (1.0 + a));
        }
    }

    #[test]
    fn seconds_ordering_consistent_with_f64(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (sa, sb) = (Seconds::new(a), Seconds::new(b));
        prop_assert_eq!(sa < sb, a < b);
        prop_assert_eq!(sa.max(sb).as_secs(), a.max(b));
        prop_assert_eq!(sa.min(sb).as_secs(), a.min(b));
    }

    #[test]
    fn flops_over_rate_scales_linearly(work in 1.0f64..1e15, tflops in 0.001f64..2000.0) {
        let t1 = Flops::new(work) / FlopRate::tera(tflops);
        let t2 = Flops::new(2.0 * work) / FlopRate::tera(tflops);
        prop_assert!((t2.as_secs() - 2.0 * t1.as_secs()).abs() < 1e-9 * t2.as_secs().max(1e-30));
    }

    #[test]
    fn rate_aggregation_is_additive(a in 0.0f64..1e12, b in 0.0f64..1e12) {
        let sum = ByteRate::new(a) + ByteRate::new(b);
        prop_assert!((sum.bytes_per_sec() - (a + b)).abs() < 1e-6 * (a + b).max(1.0));
    }

    #[test]
    fn bytes_sum_matches_u64_sum(values in prop::collection::vec(0u64..1_000_000, 0..64)) {
        let total: Bytes = values.iter().map(|&v| Bytes::new(v)).sum();
        prop_assert_eq!(total.get(), values.iter().sum::<u64>());
    }
}
