use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::{Bytes, Seconds};

/// A bandwidth, in bytes per second.
///
/// Used for interconnect links, HBM channels, SRAM ports, and inter-chip
/// links. Dividing [`Bytes`] by a `ByteRate` yields the serialized transfer
/// time; a zero rate yields [`Seconds::INFINITY`] so "no link" naturally
/// blocks a schedule instead of panicking deep inside a search.
///
/// # Examples
///
/// ```
/// use elk_units::{ByteRate, Bytes, Seconds};
///
/// let link = ByteRate::gib_per_sec(5.5);
/// let t = Bytes::mib(55) / link;
/// assert!((t.as_millis() - 9.765).abs() < 0.1);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ByteRate(f64);

impl ByteRate {
    /// A zero-bandwidth (absent) link.
    pub const ZERO: ByteRate = ByteRate(0.0);

    /// Creates a rate in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is NaN, negative, or infinite.
    #[must_use]
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "invalid bandwidth: {bytes_per_sec}"
        );
        ByteRate(bytes_per_sec)
    }

    /// Creates a rate in binary gigabytes per second.
    #[must_use]
    pub fn gib_per_sec(gib: f64) -> Self {
        ByteRate::new(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Creates a rate in binary terabytes per second.
    #[must_use]
    pub fn tib_per_sec(tib: f64) -> Self {
        ByteRate::new(tib * 1024.0 * 1024.0 * 1024.0 * 1024.0)
    }

    /// The value in bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// `true` if the link carries no bandwidth.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Serialized time to move `volume` at this rate.
    ///
    /// A zero rate yields [`Seconds::INFINITY`] (for non-zero volume).
    #[must_use]
    pub fn transfer_time(self, volume: Bytes) -> Seconds {
        if volume.is_zero() {
            Seconds::ZERO
        } else if self.0 == 0.0 {
            Seconds::INFINITY
        } else {
            Seconds::new(volume.as_f64() / self.0)
        }
    }

    /// Bytes moved in `duration` at this rate (rounded down).
    #[must_use]
    pub fn bytes_in(self, duration: Seconds) -> Bytes {
        Bytes::new((self.0 * duration.as_secs()) as u64)
    }

    /// The smaller of two rates (bottleneck of links in series).
    #[must_use]
    pub fn min(self, other: ByteRate) -> ByteRate {
        ByteRate(self.0.min(other.0))
    }

    /// The larger of two rates.
    #[must_use]
    pub fn max(self, other: ByteRate) -> ByteRate {
        ByteRate(self.0.max(other.0))
    }
}

impl Add for ByteRate {
    type Output = ByteRate;
    /// Aggregating parallel links.
    fn add(self, rhs: ByteRate) -> ByteRate {
        ByteRate(self.0 + rhs.0)
    }
}

impl Mul<f64> for ByteRate {
    type Output = ByteRate;
    fn mul(self, rhs: f64) -> ByteRate {
        ByteRate::new(self.0 * rhs)
    }
}

impl Mul<u64> for ByteRate {
    type Output = ByteRate;
    fn mul(self, rhs: u64) -> ByteRate {
        ByteRate::new(self.0 * rhs as f64)
    }
}

impl Div<f64> for ByteRate {
    type Output = ByteRate;
    fn div(self, rhs: f64) -> ByteRate {
        ByteRate::new(self.0 / rhs)
    }
}

impl Div<u64> for ByteRate {
    type Output = ByteRate;
    fn div(self, rhs: u64) -> ByteRate {
        ByteRate::new(self.0 / rhs as f64)
    }
}

impl Div<ByteRate> for ByteRate {
    type Output = f64;
    fn div(self, rhs: ByteRate) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for ByteRate {
    fn sum<I: Iterator<Item = ByteRate>>(iter: I) -> ByteRate {
        iter.fold(ByteRate::ZERO, Add::add)
    }
}

impl fmt::Display for ByteRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = 1024.0 * 1024.0 * 1024.0;
        if self.0 >= 1024.0 * g {
            write!(f, "{:.2} TiB/s", self.0 / (1024.0 * g))
        } else {
            write!(f, "{:.2} GiB/s", self.0 / g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_round_trips() {
        let rate = ByteRate::gib_per_sec(2.0);
        let vol = Bytes::gib(4);
        assert!((rate.transfer_time(vol).as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(rate.bytes_in(Seconds::new(2.0)), vol);
    }

    #[test]
    fn zero_rate_blocks() {
        assert_eq!(
            ByteRate::ZERO.transfer_time(Bytes::new(1)),
            Seconds::INFINITY
        );
        assert_eq!(ByteRate::ZERO.transfer_time(Bytes::ZERO), Seconds::ZERO);
    }

    #[test]
    fn aggregation() {
        let per_core = ByteRate::gib_per_sec(5.5);
        let total: ByteRate = per_core * 1472u64;
        assert!(total.bytes_per_sec() > ByteRate::tib_per_sec(7.8).bytes_per_sec());
    }

    #[test]
    fn series_bottleneck() {
        let a = ByteRate::gib_per_sec(10.0);
        let b = ByteRate::gib_per_sec(4.0);
        assert_eq!(a.min(b), b);
    }
}
