use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or timestamp on the device timeline, in seconds.
///
/// Timeline arithmetic in the scheduler works with non-negative finite
/// values; construction from non-finite values panics so NaNs cannot leak
/// into schedule comparisons. Subtraction clamps at zero — a schedule never
/// produces negative durations.
///
/// # Examples
///
/// ```
/// use elk_units::Seconds;
///
/// let exec = Seconds::from_micros(120.0);
/// let preload = Seconds::from_micros(80.0);
/// assert_eq!((exec + preload).as_micros().round(), 200.0);
/// assert_eq!(preload - exec, Seconds::ZERO); // clamped
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// An unreachable-future timestamp, usable as "no constraint".
    pub const INFINITY: Seconds = Seconds(f64::INFINITY);

    /// Creates a duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan() && secs >= 0.0, "invalid duration: {secs}");
        Seconds(secs)
    }

    /// Creates a duration in milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Creates a duration in microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// The value in seconds.
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// `true` for a zero duration.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// `true` for a finite duration.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The later of two timestamps.
    #[must_use]
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for Seconds {}

impl PartialOrd for Seconds {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Seconds {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so total order is safe.
        self.0.partial_cmp(&other.0).expect("Seconds is never NaN")
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    /// Clamped at zero: durations never go negative.
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == f64::INFINITY {
            write!(f, "inf")
        } else if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.2} us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Seconds::from_millis(3.0),
            Seconds::ZERO,
            Seconds::from_micros(5.0),
        ];
        v.sort();
        assert_eq!(v[0], Seconds::ZERO);
        assert_eq!(v[2], Seconds::from_millis(3.0));
    }

    #[test]
    fn subtraction_clamps() {
        let a = Seconds::from_micros(10.0);
        let b = Seconds::from_micros(30.0);
        assert_eq!(a - b, Seconds::ZERO);
        assert_eq!((b - a).as_micros().round(), 20.0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    fn min_max() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.min(Seconds::INFINITY), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Seconds::new(2.5).to_string(), "2.500 s");
        assert_eq!(Seconds::from_millis(1.5).to_string(), "1.500 ms");
        assert_eq!(Seconds::from_micros(12.0).to_string(), "12.00 us");
    }
}
