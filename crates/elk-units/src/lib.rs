//! Typed physical quantities used throughout the Elk workspace.
//!
//! The Elk compiler and simulator juggle three resource dimensions — memory
//! capacity, time, and bandwidth — whose raw representations (`u64`, `f64`)
//! are easy to confuse. This crate wraps them in transparent newtypes with
//! the arithmetic that is physically meaningful and nothing more:
//!
//! ```
//! use elk_units::{Bytes, ByteRate, Seconds};
//!
//! let tensor = Bytes::mib(168);
//! let link = ByteRate::gib_per_sec(5.5);
//! let t: Seconds = tensor / link;
//! assert!(t > Seconds::ZERO);
//! ```

#![warn(missing_docs)]

mod bytes;
mod flops;
mod rate;
mod time;

pub use bytes::Bytes;
pub use flops::{FlopRate, Flops};
pub use rate::ByteRate;
pub use time::Seconds;
