use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{ByteRate, Seconds};

/// A byte count: SRAM footprints, tensor sizes, transfer volumes.
///
/// `Bytes` is an exact integer quantity. Scaling by an `f64` fraction (for
/// example "each of `g` cores holds `1/f` of a slice") rounds **up**, so
/// per-core memory accounting never under-estimates a footprint.
///
/// # Examples
///
/// ```
/// use elk_units::Bytes;
///
/// let sram = Bytes::kib(624);
/// let tile = Bytes::new(200 * 1024);
/// assert!(tile < sram);
/// assert_eq!(sram - tile, Bytes::new(424 * 1024));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte count from binary kilobytes.
    #[must_use]
    pub const fn kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from binary megabytes.
    #[must_use]
    pub const fn mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte count from binary gigabytes.
    #[must_use]
    pub const fn gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Byte count as `f64`, for cost arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `true` if the count is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Bytes(v)),
            None => None,
        }
    }

    /// Scales by a non-negative fraction, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    #[must_use]
    pub fn scale(self, fraction: f64) -> Bytes {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "byte scale factor must be finite and non-negative, got {fraction}"
        );
        Bytes((self.0 as f64 * fraction).ceil() as u64)
    }

    /// Division rounding up: the number of `chunk`-sized pieces covering `self`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn div_ceil_by(self, chunk: Bytes) -> u64 {
        assert!(!chunk.is_zero(), "cannot divide bytes by a zero chunk");
        self.0.div_ceil(chunk.0)
    }

    /// The larger of two counts.
    #[must_use]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// The smaller of two counts.
    #[must_use]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    /// Dividing a byte count among `rhs` parts rounds up (homogeneous tiling
    /// reserves the worst-case per-part footprint).
    fn div(self, rhs: u64) -> Bytes {
        assert!(rhs != 0, "cannot divide bytes into zero parts");
        Bytes(self.0.div_ceil(rhs))
    }
}

impl Div<ByteRate> for Bytes {
    type Output = Seconds;
    fn div(self, rhs: ByteRate) -> Seconds {
        rhs.transfer_time(self)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < 1024 {
            write!(f, "{} B", self.0)
        } else if self.0 < 1024 * 1024 {
            write!(f, "{:.1} KiB", b / 1024.0)
        } else if self.0 < 1024 * 1024 * 1024 {
            write!(f, "{:.1} MiB", b / (1024.0 * 1024.0))
        } else {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Bytes::kib(1).get(), 1024);
        assert_eq!(Bytes::mib(1).get(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).get(), 1024 * 1024 * 1024);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Bytes::new(100);
        let b = Bytes::new(30);
        assert_eq!(a + b, Bytes::new(130));
        assert_eq!(a - b, Bytes::new(70));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bytes::new(70)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a * 3, Bytes::new(300));
    }

    #[test]
    fn division_rounds_up() {
        assert_eq!(Bytes::new(10) / 3, Bytes::new(4));
        assert_eq!(Bytes::new(9) / 3, Bytes::new(3));
        assert_eq!(Bytes::new(10).div_ceil_by(Bytes::new(4)), 3);
    }

    #[test]
    fn scale_rounds_up() {
        assert_eq!(Bytes::new(10).scale(0.5), Bytes::new(5));
        assert_eq!(Bytes::new(10).scale(1.0 / 3.0), Bytes::new(4));
        assert_eq!(Bytes::new(10).scale(0.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scale_rejects_negative() {
        let _ = Bytes::new(1).scale(-0.5);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(624).to_string(), "624.0 KiB");
        assert_eq!(Bytes::mib(896).to_string(), "896.0 MiB");
    }

    #[test]
    fn sums() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Bytes::new(6));
    }
}
