use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::Seconds;

/// A count of floating-point operations.
///
/// # Examples
///
/// ```
/// use elk_units::{FlopRate, Flops};
///
/// // One decode step of a 13B-parameter model at batch 32:
/// let work = Flops::new(2.0 * 13e9 * 32.0);
/// let peak = FlopRate::tera(1000.0);
/// assert!((work / peak).as_millis() < 1.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Flops(f64);

impl Flops {
    /// Zero work.
    pub const ZERO: Flops = Flops(0.0);

    /// Creates a FLOP count.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is NaN or negative.
    #[must_use]
    pub fn new(flops: f64) -> Self {
        assert!(
            !flops.is_nan() && flops >= 0.0,
            "invalid FLOP count: {flops}"
        );
        Flops(flops)
    }

    /// The raw count.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// `true` for zero work.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl Mul<f64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: f64) -> Flops {
        Flops::new(self.0 * rhs)
    }
}

impl Div<u64> for Flops {
    type Output = Flops;
    fn div(self, rhs: u64) -> Flops {
        Flops::new(self.0 / rhs as f64)
    }
}

impl Div<FlopRate> for Flops {
    type Output = Seconds;
    fn div(self, rhs: FlopRate) -> Seconds {
        if self.0 == 0.0 {
            Seconds::ZERO
        } else if rhs.0 == 0.0 {
            Seconds::INFINITY
        } else {
            Seconds::new(self.0 / rhs.0)
        }
    }
}

impl Div<Seconds> for Flops {
    type Output = FlopRate;
    fn div(self, rhs: Seconds) -> FlopRate {
        if rhs.is_zero() {
            FlopRate::ZERO
        } else {
            FlopRate::new(self.0 / rhs.as_secs())
        }
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        iter.fold(Flops::ZERO, Add::add)
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} TFLOP", self.0 / 1e12)
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} GFLOP", self.0 / 1e9)
        } else {
            write!(f, "{:.0} FLOP", self.0)
        }
    }
}

/// A compute throughput, in FLOP/s.
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FlopRate(f64);

impl FlopRate {
    /// Zero throughput.
    pub const ZERO: FlopRate = FlopRate(0.0);

    /// Creates a throughput in FLOP/s.
    ///
    /// # Panics
    ///
    /// Panics if `flops_per_sec` is NaN, negative, or infinite.
    #[must_use]
    pub fn new(flops_per_sec: f64) -> Self {
        assert!(
            flops_per_sec.is_finite() && flops_per_sec >= 0.0,
            "invalid throughput: {flops_per_sec}"
        );
        FlopRate(flops_per_sec)
    }

    /// Creates a throughput in TFLOP/s.
    #[must_use]
    pub fn tera(tflops: f64) -> Self {
        FlopRate::new(tflops * 1e12)
    }

    /// The value in FLOP/s.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The value in TFLOP/s.
    #[must_use]
    pub fn as_tera(self) -> f64 {
        self.0 / 1e12
    }

    /// Work performed in `duration`.
    #[must_use]
    pub fn flops_in(self, duration: Seconds) -> Flops {
        Flops::new(self.0 * duration.as_secs())
    }
}

impl Add for FlopRate {
    type Output = FlopRate;
    fn add(self, rhs: FlopRate) -> FlopRate {
        FlopRate(self.0 + rhs.0)
    }
}

impl Mul<f64> for FlopRate {
    type Output = FlopRate;
    fn mul(self, rhs: f64) -> FlopRate {
        FlopRate::new(self.0 * rhs)
    }
}

impl Mul<u64> for FlopRate {
    type Output = FlopRate;
    fn mul(self, rhs: u64) -> FlopRate {
        FlopRate::new(self.0 * rhs as f64)
    }
}

impl Div<u64> for FlopRate {
    type Output = FlopRate;
    fn div(self, rhs: u64) -> FlopRate {
        FlopRate::new(self.0 / rhs as f64)
    }
}

impl Sum for FlopRate {
    fn sum<I: Iterator<Item = FlopRate>>(iter: I) -> FlopRate {
        iter.fold(FlopRate::ZERO, Add::add)
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} TFLOPS", self.0 / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_over_rate_gives_time() {
        let t = Flops::new(2e12) / FlopRate::tera(1.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_gives_infinite_time() {
        assert_eq!(Flops::new(1.0) / FlopRate::ZERO, Seconds::INFINITY);
        assert_eq!(Flops::ZERO / FlopRate::ZERO, Seconds::ZERO);
    }

    #[test]
    fn achieved_rate() {
        let rate = Flops::new(5e12) / Seconds::new(2.0);
        assert!((rate.as_tera() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(FlopRate::tera(81.06).to_string(), "81.06 TFLOPS");
    }
}
