//! Criterion bench of execute/preload-state plan enumeration (§4.3, §5).

use criterion::{criterion_group, criterion_main, Criterion};

use elk_cost::AnalyticDevice;
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_partition::Partitioner;

fn bench_partition(c: &mut Criterion) {
    let system = presets::ipu_pod4();
    let device = AnalyticDevice::of_chip(&system.chip);
    let partitioner = Partitioner::new(&system.chip, &device);
    let graph = zoo::llama2_13b().build(Workload::decode(32, 2048), 4);
    let qkv = graph.iter().find(|o| o.name() == "l0.attn_qkv").unwrap();
    let scores = graph.iter().find(|o| o.name() == "l0.attn_scores").unwrap();

    let mut g = c.benchmark_group("partition");
    g.bench_function("enumerate_weight_matmul", |b| {
        b.iter(|| partitioner.plans(qkv))
    });
    g.bench_function("enumerate_kv_batchmatmul", |b| {
        b.iter(|| partitioner.plans(scores))
    });
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
