//! Criterion bench of the cost-aware greedy memory allocator (§4.3) —
//! the inner loop of the scheduler, called O(K·N) times per order.

use criterion::{criterion_group, criterion_main, Criterion};

use elk_core::{allocate, FrontierPoint};
use elk_units::{Bytes, Seconds};

fn frontier(points: usize, base: u64) -> Vec<FrontierPoint> {
    (0..points)
        .map(|i| FrontierPoint {
            plan_idx: i,
            space: Bytes::new(base * (points - i) as u64),
            time: Seconds::from_micros(10.0 + 5.0 * i as f64),
        })
        .collect()
}

fn bench_allocator(c: &mut Criterion) {
    let current = frontier(30, 8192);
    let windows: Vec<Vec<FrontierPoint>> = (0..12).map(|_| frontier(5, 16384)).collect();
    let window_refs: Vec<&[FrontierPoint]> = windows.iter().map(Vec::as_slice).collect();
    let mut g = c.benchmark_group("allocator");
    g.bench_function("greedy_12_windows", |b| {
        b.iter(|| allocate(&current, &window_refs, Bytes::kib(616)))
    });
    g.bench_function("greedy_tight_capacity", |b| {
        b.iter(|| allocate(&current, &window_refs, Bytes::kib(200)))
    });
    g.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
