//! Criterion benches of the end-to-end compiler and its scheduling core.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use elk_core::{identity_order, Catalog, Compiler, CompilerOptions, ScheduleOptions, Scheduler};
use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_partition::Partitioner;

fn bench_compiler(c: &mut Criterion) {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 4;
    let graph = cfg.build(Workload::decode(16, 1024), 4);
    let compiler = Compiler::with_options(
        system.clone(),
        CompilerOptions {
            threads: 1,
            ..CompilerOptions::default()
        },
    );

    let mut g = c.benchmark_group("compiler");
    g.sample_size(10);
    g.bench_function("compile_llama13_4layer", |b| {
        b.iter(|| compiler.compile(&graph).expect("compile"))
    });

    // Same compile on a multi-worker pool (catalog fan-out + parallel
    // order evaluation); the output is byte-identical, only wall-clock
    // moves. See benches/par_compile.rs for the full 1-vs-N sweep with
    // results/ emission.
    let par_threads = elk_par::resolve_threads(0).max(4);
    let par_compiler = Compiler::with_options(
        system.clone(),
        CompilerOptions {
            threads: par_threads,
            ..CompilerOptions::default()
        },
    );
    g.bench_function("compile_llama13_4layer_parallel", |b| {
        b.iter(|| par_compiler.compile(&graph).expect("compile"))
    });

    let device = AnalyticDevice::of_chip(&system.chip);
    let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
    let partitioner = Partitioner::new(&system.chip, &cost);
    let catalog = Catalog::build(&graph, &partitioner).expect("catalog");
    let scheduler = Scheduler::new(&graph, &catalog, &system, ScheduleOptions::default());
    let order = identity_order(graph.len());
    g.bench_function("inductive_schedule_one_order", |b| {
        b.iter_batched(
            || order.clone(),
            |o| scheduler.schedule(&o).expect("schedule"),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
