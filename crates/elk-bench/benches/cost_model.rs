//! Criterion benches of the cost models: fitting the linear tree and the
//! per-prediction latency the planner pays millions of times.

use criterion::{criterion_group, criterion_main, Criterion};

use elk_cost::{AnalyticDevice, CostModel, LearnedCostModel, ProfileConfig, TileShape};
use elk_hw::presets;
use elk_units::Bytes;

fn bench_cost(c: &mut Criterion) {
    let device = AnalyticDevice::of_chip(&presets::ipu_pod4().chip).with_noise(0.05);
    let quick = ProfileConfig {
        samples_per_class: 600,
        ..ProfileConfig::default()
    };
    let mut g = c.benchmark_group("cost_model");
    g.sample_size(10);
    g.bench_function("fit_600_samples_per_class", |b| {
        b.iter(|| LearnedCostModel::fit(&device, &quick))
    });
    let model = LearnedCostModel::fit(&device, &ProfileConfig::default());
    let tile = TileShape::matmul(16, 1280, 24);
    g.bench_function("predict_tile", |b| b.iter(|| model.tile_time(&tile)));
    g.bench_function("predict_link", |b| {
        b.iter(|| model.link_time(Bytes::kib(96)))
    });
    g.bench_function("analytic_tile", |b| b.iter(|| device.tile_time(&tile)));
    g.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
