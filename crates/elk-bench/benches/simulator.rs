//! Criterion bench of the event-driven simulator's throughput.

use criterion::{criterion_group, criterion_main, Criterion};

use elk_core::Compiler;
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_sim::{simulate, SimOptions};

fn bench_simulator(c: &mut Criterion) {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 8;
    let graph = cfg.build(Workload::decode(32, 2048), 4);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");

    let mut g = c.benchmark_group("simulator");
    g.bench_function("simulate_8_layers", |b| {
        b.iter(|| simulate(&plan.program, &system, &SimOptions::default()))
    });
    g.bench_function("simulate_with_trace", |b| {
        b.iter(|| {
            simulate(
                &plan.program,
                &system,
                &SimOptions::default().with_trace(64),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
