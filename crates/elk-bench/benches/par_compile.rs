//! Thread-scaling bench: catalog construction and end-to-end compile at
//! 1 vs N worker threads, with byte-identical-output verification and
//! `results/par_compile.{txt,json}` emission.
//!
//! ```text
//! cargo bench -p elk-bench --bench par_compile            # 1 vs available cores
//! ELK_PAR_BENCH_THREADS=8 cargo bench -p elk-bench --bench par_compile
//! ```
//!
//! Unlike the criterion-shim benches this is a custom harness
//! (`harness = false`): it computes speedups across thread counts and
//! writes the table to `results/`, which the README's Performance
//! section sources.

use std::time::Instant;

use serde::Serialize;

use elk_core::{Catalog, Compiler, CompilerOptions};
use elk_cost::{AnalyticDevice, LearnedCostModel, ProfileConfig};
use elk_hw::presets;
use elk_model::{zoo, ModelGraph, Workload};
use elk_partition::Partitioner;

/// One measured (stage, thread-count) point.
#[derive(Debug, Serialize)]
struct Row {
    stage: String,
    threads: usize,
    mean_ms: f64,
    speedup_vs_1: f64,
}

/// Everything written to `results/par_compile.json`.
#[derive(Debug, Serialize)]
struct Payload {
    machine_cores: usize,
    iters: u32,
    rows: Vec<Row>,
}

fn mean_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
}

fn main() {
    let machine_cores = elk_par::resolve_threads(0);
    let max_threads = std::env::var("ELK_PAR_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| machine_cores.max(4));
    let iters: u32 = std::env::var("ELK_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut thread_counts = vec![1usize];
    for t in [2, 4, max_threads] {
        if t > *thread_counts.last().unwrap() && t <= max_threads {
            thread_counts.push(t);
        }
    }

    let system = presets::ipu_pod4();
    let device = AnalyticDevice::of_chip(&system.chip);
    let cost = LearnedCostModel::fit(&device, &ProfileConfig::default());
    let partitioner = Partitioner::new(&system.chip, &cost);
    // Two models' worth of distinct signatures: the catalog stage fans
    // per-signature plan enumeration across the pool.
    let graphs: Vec<ModelGraph> = [zoo::llama2_13b(), zoo::opt_30b()]
        .into_iter()
        .map(|cfg| cfg.build(Workload::decode(32, 2048), 4))
        .collect();
    let mut compile_cfg = zoo::llama2_13b();
    compile_cfg.layers = 4;
    let compile_graph = compile_cfg.build(Workload::decode(16, 1024), 4);

    let mut ctx = elk_bench::Ctx::new("par_compile");
    if std::env::var_os("ELK_RESULTS_DIR").is_none() {
        // `cargo bench` sets the package dir as cwd; write to the
        // workspace `results/` like the experiment bins do.
        ctx = ctx.with_results_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    }
    ctx.header("Thread scaling: catalog construction + end-to-end compile");
    ctx.line(format!(
        "machine: {machine_cores} core(s); {iters} measured iterations per point"
    ));
    let baseline_catalog = Catalog::build_par(&graphs[0], &partitioner, 1).expect("catalog");
    let baseline_plan = Compiler::with_options(
        system.clone(),
        CompilerOptions {
            threads: 1,
            ..CompilerOptions::default()
        },
    )
    .compile(&compile_graph)
    .expect("compile");

    let mut rows: Vec<Row> = Vec::new();
    let mut cells: Vec<Vec<String>> = Vec::new();
    for &threads in &thread_counts {
        // Determinism first: the parallel outputs must be byte-identical
        // to the single-threaded ones before their timing means anything.
        let cat = Catalog::build_par(&graphs[0], &partitioner, threads).expect("catalog");
        assert_eq!(
            cat.distinct_signatures(),
            baseline_catalog.distinct_signatures()
        );
        for i in 0..cat.len() {
            assert_eq!(
                cat.op(elk_model::OpId(i)),
                baseline_catalog.op(elk_model::OpId(i)),
                "catalog diverged at {threads} threads (op {i})"
            );
        }
        let compiler = Compiler::with_options(
            system.clone(),
            CompilerOptions {
                threads,
                ..CompilerOptions::default()
            },
        );
        let plan = compiler.compile(&compile_graph).expect("compile");
        assert_eq!(
            plan.program, baseline_plan.program,
            "plan selection diverged at {threads} threads"
        );
        assert_eq!(plan.schedule, baseline_plan.schedule);

        let catalog_ms = mean_ms(iters, || {
            for graph in &graphs {
                let c = Catalog::build_par(graph, &partitioner, threads).expect("catalog");
                std::hint::black_box(c);
            }
        });
        let compile_ms = mean_ms(iters, || {
            std::hint::black_box(compiler.compile(&compile_graph).expect("compile"));
        });
        for (stage, ms) in [("catalog_build", catalog_ms), ("compile_e2e", compile_ms)] {
            let base = rows
                .iter()
                .find(|r| r.stage == stage && r.threads == 1)
                .map_or(ms, |r| r.mean_ms);
            let row = Row {
                stage: stage.to_string(),
                threads,
                mean_ms: ms,
                speedup_vs_1: base / ms,
            };
            cells.push(vec![
                row.stage.clone(),
                row.threads.to_string(),
                format!("{:.2}", row.mean_ms),
                format!("{:.2}x", row.speedup_vs_1),
            ]);
            rows.push(row);
        }
    }
    ctx.table(&["stage", "threads", "mean ms", "speedup"], &cells);
    ctx.line("");
    ctx.line("Outputs verified byte-identical across all thread counts before timing.");
    ctx.finish(&Payload {
        machine_cores,
        iters,
        rows,
    });
}
