//! Experiment context: output capture, result files, and shared fixtures.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use serde::Serialize;

use elk_hw::{presets, SystemConfig};
use elk_model::{zoo, ModelGraph, TransformerConfig, Workload};

/// Context threaded through every experiment: collects printed output,
/// writes `results/<id>.{txt,json}`, and carries the quick/full switch.
#[derive(Debug)]
pub struct Ctx {
    id: String,
    out: String,
    results_dir: PathBuf,
    /// `false` unless `ELK_FULL=1`: quick grids cover every series with
    /// fewer sweep points.
    pub full: bool,
    /// Worker threads for compiler-side parallel sections (catalog
    /// construction, order evaluation, serving cache fan-out). Defaults
    /// to `ELK_THREADS` if set and valid, else all available cores; the
    /// bench binaries override it from `--threads` via [`bin_ctx`].
    /// Experiment outputs are byte-identical at any setting.
    pub threads: usize,
    /// Headline metrics recorded via [`Ctx::metric`], in insertion
    /// order. `repro_all` consolidates them into `results/BENCH.json`
    /// so successive PRs can diff performance machine-readably.
    metrics: Vec<(String, f64)>,
    /// Measured (wall-clock-derived) metrics recorded via
    /// [`Ctx::perf`]: events/sec, peak RSS. Kept separate from
    /// [`Ctx::metric`] because they legitimately change run to run —
    /// consolidators put them under a distinct `perf` section that is
    /// excluded from byte-identity checks.
    perf: Vec<(String, f64)>,
}

impl Ctx {
    /// Creates a context for experiment `id`. Results go to `results/`
    /// (override with `ELK_RESULTS_DIR`); `ELK_FULL=1` enables the full
    /// parameter grids.
    ///
    /// # Panics
    ///
    /// Panics if `ELK_THREADS` is set to an invalid count (`0` or
    /// non-numeric) — the same values the `--threads` CLI flag rejects.
    #[must_use]
    pub fn new(id: &str) -> Self {
        let results_dir = std::env::var_os("ELK_RESULTS_DIR")
            .map_or_else(|| PathBuf::from("results"), PathBuf::from);
        // One validation path for the knob: parse_threads with no CLI
        // args falls through to ELK_THREADS / available parallelism.
        let threads = match elk_par::parse_threads(std::iter::empty::<String>()) {
            Ok(parsed) => parsed.threads,
            Err(e) => panic!("{e}"),
        };
        Ctx {
            id: id.to_string(),
            out: String::new(),
            results_dir,
            full: std::env::var_os("ELK_FULL").is_some(),
            threads,
            metrics: Vec::new(),
            perf: Vec::new(),
        }
    }

    /// Overrides the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the results directory (benches run with the package —
    /// not the workspace — as their working directory, so they pin the
    /// workspace `results/` explicitly).
    #[must_use]
    pub fn with_results_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.results_dir = dir.into();
        self
    }

    /// Records one headline metric (a simulated/derived quantity —
    /// never wall-clock, so consolidated files stay byte-identical
    /// run to run). Duplicate keys keep the last value.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.metrics.push((key, value));
        }
    }

    /// The metrics recorded so far, in insertion order.
    #[must_use]
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Records one *measured* metric — a wall-clock-derived quantity
    /// like events/sec or peak RSS. These go to `BENCH.json`'s `perf`
    /// section, which is documented as run-varying and excluded from
    /// the byte-identity contract the deterministic metrics obey.
    /// Duplicate keys keep the last value.
    pub fn perf(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        if let Some(slot) = self.perf.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.perf.push((key, value));
        }
    }

    /// The measured metrics recorded so far, in insertion order.
    #[must_use]
    pub fn perf_metrics(&self) -> &[(String, f64)] {
        &self.perf
    }

    /// The resolved results directory this context writes into — the
    /// single source of the `--out` / `ELK_RESULTS_DIR` policy, so
    /// consolidators (`repro_all`'s `BENCH.json`) land next to the
    /// per-experiment files by construction.
    #[must_use]
    pub fn results_dir(&self) -> &std::path::Path {
        &self.results_dir
    }

    /// Prints a line to stdout and the captured transcript.
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        let _ = writeln!(self.out, "{}", s.as_ref());
    }

    /// Prints a header line.
    pub fn header(&mut self, title: &str) {
        let bar = "=".repeat(title.len());
        self.line(&bar);
        self.line(title);
        self.line(&bar);
    }

    /// Prints an aligned table: `widths[i]` columns, headers then rows.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        self.line(fmt_row(&head, &widths));
        self.line("-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in rows {
            self.line(fmt_row(row, &widths));
        }
    }

    /// Writes the captured transcript and a JSON payload to `results/`.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created or written.
    pub fn finish<T: Serialize>(&self, payload: &T) {
        fs::create_dir_all(&self.results_dir).expect("create results dir");
        fs::write(self.results_dir.join(format!("{}.txt", self.id)), &self.out)
            .expect("write transcript");
        let json = serde_json::to_string_pretty(payload).expect("serialize results");
        fs::write(self.results_dir.join(format!("{}.json", self.id)), json).expect("write json");
    }
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`),
/// or `None` where the kernel does not expose it. Used by the scale
/// bench's `perf` metrics; never part of a deterministic payload.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts `--out DIR` (or `--out=DIR`) from an argument stream,
/// returning the directory and the remaining arguments in order — the
/// output-path counterpart of [`elk_par::parse_threads`], shared by
/// every fig/table/repro bench binary so none of them hardcodes
/// `results/`.
///
/// # Errors
///
/// Returns a human-readable message when the flag is given without a
/// value.
pub fn parse_out(
    args: impl IntoIterator<Item = String>,
) -> Result<(Option<PathBuf>, Vec<String>), String> {
    let (values, rest) = elk_par::extract_flag("--out", args)
        .map_err(|_| "--out requires a directory; omit it to write to results/".to_string())?;
    Ok((values.last().map(PathBuf::from), rest))
}

/// Creates the context for a bench binary: like [`Ctx::new`] but with
/// the thread count taken from a `--threads N` command-line flag
/// (default: all available cores; `ELK_THREADS` is honored too) and
/// the results directory from `--out DIR` (default: `results/`, or
/// `ELK_RESULTS_DIR`). Prints a usage error and exits 2 on an invalid
/// value — a zero thread count included — mirroring the examples'
/// model-name handling.
#[must_use]
pub fn bin_ctx(id: &str) -> Ctx {
    let fail = |e: String| -> ! {
        eprintln!("{e}");
        std::process::exit(2);
    };
    let parsed = elk_par::parse_threads(std::env::args().skip(1)).unwrap_or_else(|e| fail(e));
    let (out, rest) = parse_out(parsed.rest).unwrap_or_else(|e| fail(e));
    // A misspelled flag must not silently run with defaults — the
    // typo-safety rule the scenario layer enforces for its files.
    if let Some(unknown) = rest.iter().find(|arg| arg.starts_with('-')) {
        fail(format!(
            "unknown flag '{unknown}': the bench binaries accept --threads N and --out DIR"
        ));
    }
    let ctx = Ctx::new(id).with_threads(parsed.threads);
    match out {
        Some(dir) => ctx.with_results_dir(dir),
        None => ctx,
    }
}

/// The paper's default platform: IPU-POD4 + 16 TB/s pod HBM (§6.1).
#[must_use]
pub fn default_system() -> SystemConfig {
    presets::ipu_pod4()
}

/// The four evaluation LLMs of Table 2 (in paper order).
#[must_use]
pub fn llms() -> Vec<TransformerConfig> {
    vec![
        zoo::llama2_13b(),
        zoo::gemma2_27b(),
        zoo::opt_30b(),
        zoo::llama2_70b(),
    ]
}

/// The paper's default serving workload (batch 32, sequence 2048).
#[must_use]
pub fn default_workload() -> Workload {
    Workload::decode(32, 2048)
}

/// Builds an LLM graph for the 4-chip tensor-parallel pod.
#[must_use]
pub fn build_llm(cfg: &TransformerConfig, wl: Workload) -> ModelGraph {
    cfg.build(wl, 4)
}

/// Milliseconds with 3 decimals, for table cells.
#[must_use]
pub fn ms(t: elk_units::Seconds) -> String {
    format!("{:.3}", t.as_millis())
}

/// A fraction as a percentage cell.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_does_not_panic() {
        let mut ctx = Ctx::new("selftest");
        ctx.table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(ctx.out.contains("333"));
    }

    #[test]
    fn fixtures_cover_paper_models() {
        assert_eq!(llms().len(), 4);
        assert_eq!(default_workload().batch, 32);
    }

    #[test]
    fn parse_out_extracts_the_flag_in_any_position() {
        for args in [
            &["--out", "tmp", "pos"][..],
            &["pos", "--out", "tmp"],
            &["pos", "--out=tmp"],
        ] {
            let (out, rest) = parse_out(args.iter().map(ToString::to_string)).unwrap();
            assert_eq!(out, Some(PathBuf::from("tmp")));
            assert_eq!(rest, vec!["pos".to_string()]);
        }
        let (out, rest) = parse_out(["pos".to_string()]).unwrap();
        assert_eq!(out, None);
        assert_eq!(rest, vec!["pos".to_string()]);
        assert!(parse_out(["--out".to_string()])
            .unwrap_err()
            .contains("directory"));
    }

    #[test]
    fn ctx_writes_into_the_overridden_results_dir() {
        let dir = std::env::temp_dir().join(format!("elk-bench-out-{}", std::process::id()));
        let ctx = Ctx::new("outtest").with_results_dir(&dir);
        ctx.finish(&42u64);
        let json = fs::read_to_string(dir.join("outtest.json")).expect("json in --out dir");
        assert_eq!(json.trim(), "42");
        let _ = fs::remove_dir_all(&dir);
    }
}
