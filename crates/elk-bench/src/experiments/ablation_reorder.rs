//! Ablation: preload-order search budget. Sweeps the edit-distance cap of
//! §4.4 from "disabled" (Elk-Dyn) to the full `H!` space, on a
//! memory-pressured workload where reordering has room to help.

use serde::Serialize;

use elk_core::{Compiler, CompilerOptions};
use elk_model::{zoo, Workload};
use elk_sim::{simulate, SimOptions};

use crate::ctx::{default_system, Ctx};

/// One preload-reorder budget point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Edit-distance cap label.
    pub edit_cap: String,
    /// Candidate preload orders evaluated.
    pub orders_considered: usize,
    /// Edit distance of the chosen order.
    pub chosen_edit_distance: usize,
    /// Simulated step latency (ms).
    pub latency_ms: f64,
    /// Time throttled by interconnect contention (ms).
    pub interconnect_ms: f64,
    /// Compile wall-clock (s).
    pub compile_seconds: f64,
}

/// Runs the ablation.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Ablation: preload-order search budget (edit-distance cap)");
    let system = default_system();
    let mut cfg = zoo::llama2_13b();
    if !ctx.full {
        cfg.layers = 8;
    }
    let graph = cfg.build(Workload::decode(32, 4096), 4);

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, enable, cap, max_orders) in [
        ("off (ELK-Dyn)", false, None, 1usize),
        ("<=1", true, Some(1), 48),
        ("<=2", true, Some(2), 48),
        ("<=4", true, Some(4), 48),
        ("all H!", true, None, 720),
    ] {
        let mut opts = CompilerOptions {
            threads: ctx.threads,
            ..CompilerOptions::default()
        };
        opts.reorder.enable = enable;
        opts.reorder.max_edit_distance = cap;
        opts.reorder.max_orders = max_orders;
        let compiler = Compiler::with_options(system.clone(), opts);
        let plan = compiler.compile(&graph).expect("compile");
        let report = simulate(&plan.program, &system, &SimOptions::default());
        cells.push(vec![
            label.to_string(),
            plan.stats.orders_considered.to_string(),
            plan.stats.chosen_edit_distance.to_string(),
            format!("{:.3}", report.total.as_millis()),
            format!("{:.3}", report.buckets.interconnect.as_millis()),
            format!("{:.2}", plan.stats.compile_seconds),
        ]);
        rows.push(Row {
            edit_cap: label.to_string(),
            orders_considered: plan.stats.orders_considered,
            chosen_edit_distance: plan.stats.chosen_edit_distance,
            latency_ms: report.total.as_millis(),
            interconnect_ms: report.buckets.interconnect.as_millis(),
            compile_seconds: plan.stats.compile_seconds,
        });
    }
    ctx.table(
        &[
            "edit cap",
            "orders",
            "chosen d",
            "latency(ms)",
            "noc-stall(ms)",
            "compile(s)",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Reading: small caps capture most of the benefit (the paper's chosen orders");
    ctx.line("average 2.9 steps from identity); the full H! search mostly costs compile time.");
    ctx.finish(&rows);
}
