//! Fig. 12: cost-model accuracy — predicted vs measured per-core times
//! for MatMul / Reduce / Elementwise tiles and inter-core transfers.

use serde::Serialize;

use elk_cost::{AccuracyReport, AnalyticDevice, LearnedCostModel, OpClass, ProfileConfig};

use crate::ctx::{default_system, Ctx};

/// Cost-model accuracy panel for one prediction subject.
#[derive(Debug, Serialize)]
pub struct Panel {
    /// What is being predicted (execution / preload / e2e).
    pub subject: String,
    /// Mean absolute percentage error.
    pub mape: f64,
    /// R-squared in log space.
    pub r2_log: f64,
    /// A subsample of `(predicted us, measured us)` pairs.
    pub sample_pairs: Vec<(f64, f64)>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 12: cost model accuracy (predicted vs measured, held-out tiles)");
    let system = default_system();
    let device = AnalyticDevice::of_chip(&system.chip).with_noise(0.05);
    let model = LearnedCostModel::fit(&device, &ProfileConfig::default());
    let n = if ctx.full { 2000 } else { 500 };

    let mut panels = Vec::new();
    let mut reports: Vec<AccuracyReport> = vec![
        AccuracyReport::for_class(&model, &device, OpClass::MatMul, n, 0xf16),
        AccuracyReport::for_class(&model, &device, OpClass::Reduce, n, 0xf16),
        AccuracyReport::for_class(&model, &device, OpClass::Elementwise, n, 0xf16),
    ];
    reports.push(AccuracyReport::for_transfer(&model, &device, n, 0xf16));

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.subject.clone(),
                format!("{:.1}%", r.mape * 100.0),
                format!("{:.3}", r.r2_log),
            ]
        })
        .collect();
    ctx.table(&["panel", "MAPE", "log-R^2"], &rows);

    for r in &reports {
        let sample: Vec<(f64, f64)> = r
            .pairs
            .iter()
            .step_by(r.pairs.len() / 8 + 1)
            .copied()
            .collect();
        let cells: Vec<String> = sample
            .iter()
            .map(|(p, m)| format!("{p:.1}/{m:.1}"))
            .collect();
        ctx.line(format!(
            "{:>12} pred/meas us: {}",
            r.subject,
            cells.join("  ")
        ));
        panels.push(Panel {
            subject: r.subject.clone(),
            mape: r.mape,
            r2_log: r.r2_log,
            sample_pairs: sample,
        });
    }
    ctx.line("");
    ctx.line("Expected shape (paper): points hug the diagonal over 3-4 decades for every");
    ctx.line("panel (tight log-log scatter).");
    for p in &panels {
        ctx.metric(format!("{}.mape", p.subject), p.mape);
        ctx.metric(format!("{}.r2_log", p.subject), p.r2_log);
    }
    ctx.finish(&panels);
}
