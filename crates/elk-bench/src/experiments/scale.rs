//! Scale: one million requests through a routed multi-replica cluster
//! on the shared `elk-sim-core` event kernel.
//!
//! Not a paper figure: this is the harness's throughput stress for the
//! discrete-event kernel itself. It pushes `ELK_SCALE_REQUESTS`
//! (default 1 000 000) Poisson arrivals through a `(tp=1, pp=1, dp=4)`
//! IPU-POD4 cluster and records two kinds of numbers:
//!
//! * **deterministic** serving metrics (completions, makespan,
//!   time-weighted queue depths, step counts, kernel events) via
//!   [`Ctx::metric`] — byte-identical at any `--threads` count, which
//!   CI checks by diffing `results/scale.json` across thread counts;
//! * **measured** throughput (kernel events/sec, wall seconds, peak
//!   RSS) via [`Ctx::perf`] — printed to stdout only and consolidated
//!   into `BENCH.json`'s run-varying `perf` section, never into the
//!   transcript or JSON payload.

use std::time::Instant;

use serde::Serialize;

use elk_baselines::Design;
use elk_cluster::{ClusterServeConfig, ClusterServingSim, ParallelismPlan};
use elk_model::{zoo, SeqBuckets};
use elk_serve::{ArrivalProcess, BatchConfig, LengthDist, RouterPolicy, TraceConfig};

use crate::ctx::{default_system, peak_rss_bytes, Ctx};

/// Deterministic summary written to `results/scale.json`. Everything
/// here is simulated — no wall-clock quantity may be added, because CI
/// compares this file byte for byte between `--threads 1` and `8`.
#[derive(Debug, Serialize)]
pub struct Summary {
    /// Requests pushed through the cluster.
    pub requests: usize,
    /// Requests that ran to completion (must equal `requests`).
    pub completed: usize,
    /// Replica groups (the plan's `dp`).
    pub groups: usize,
    /// Kernel events fired (arrivals + step completions).
    pub sim_events: u64,
    /// Simulated seconds from first arrival to last token.
    pub makespan_s: f64,
    /// Completions per simulated second.
    pub throughput_rps: f64,
    /// Generated tokens per simulated second.
    pub tokens_per_sec: f64,
    /// Prefill iterations across all groups.
    pub prefill_steps: u64,
    /// Decode iterations across all groups.
    pub decode_steps: u64,
    /// Time-weighted mean waiting-queue depth across the fleet.
    pub mean_queue_depth: f64,
    /// Deepest waiting queue observed on any group.
    pub max_queue_depth: usize,
    /// Requests dispatched to each group, in group order.
    pub per_group_requests: Vec<usize>,
    /// Mean end-to-end latency in simulated milliseconds.
    pub e2e_mean_ms: f64,
    /// p99 time-to-first-token in simulated milliseconds.
    pub ttft_p99_ms: f64,
}

/// The request count: `ELK_SCALE_REQUESTS` if set and valid, else the
/// acceptance-scale one million. CI's smoke step drops it to ~20k.
#[must_use]
pub fn request_count() -> usize {
    std::env::var("ELK_SCALE_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1_000_000)
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the pod-4 plan fails to compile — the same fixture every
/// cluster test serves.
pub fn run(ctx: &mut Ctx) {
    let requests = request_count();
    ctx.header("Scale: million-request cluster serving on the event kernel");
    ctx.line(format!(
        "{requests} Poisson arrivals -> llama2-13b (2 layers) on tp1 x pp1 x dp4, round-robin"
    ));

    let mut model = zoo::llama2_13b();
    model.layers = 2; // per-step cost is irrelevant here; event volume is the point
    let config = ClusterServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_prefill_tokens: 2048,
            seq_buckets: SeqBuckets::new(256, 2048),
            bucket_batch: true,
        },
        threads: ctx.threads,
        ..ClusterServeConfig::new(model, ParallelismPlan::new(1, 1, 4))
    };
    let trace = TraceConfig {
        seed: 11,
        requests,
        // Below the fixture's ~380 req/s service capacity, so queues
        // stay bounded and the run exercises steady-state serving
        // rather than an ever-growing backlog.
        arrivals: ArrivalProcess::Poisson { rate_rps: 300.0 },
        prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
        output_len: LengthDist::Uniform { lo: 2, hi: 12 },
    }
    .generate();
    let mut sim = ClusterServingSim::new(default_system(), config).expect("pod4 plan is valid");

    // Wall-clock brackets the event loop only (plan compiles for the
    // handful of bucketed shapes happen inside and amortize to noise).
    let started = Instant::now();
    let report = sim
        .run(Design::ElkFull, RouterPolicy::RoundRobin, &trace)
        .expect("pod4 plan compiles");
    let wall = started.elapsed().as_secs_f64();

    assert_eq!(
        report.completed, requests,
        "conservation: every arrival completes"
    );

    let summary = Summary {
        requests,
        completed: report.completed,
        groups: report.per_group_requests.len(),
        sim_events: report.sim_events,
        makespan_s: report.makespan.as_secs(),
        throughput_rps: report.throughput_rps,
        tokens_per_sec: report.tokens_per_sec,
        prefill_steps: report.prefill_steps,
        decode_steps: report.decode_steps,
        mean_queue_depth: report.mean_queue_depth,
        max_queue_depth: report.max_queue_depth,
        per_group_requests: report.per_group_requests.clone(),
        e2e_mean_ms: report.e2e.mean.as_millis(),
        ttft_p99_ms: report.ttft.p99.as_millis(),
    };

    ctx.line("");
    ctx.table(
        &["metric", "value"],
        &[
            vec!["completed".into(), summary.completed.to_string()],
            vec!["sim events".into(), summary.sim_events.to_string()],
            vec![
                "makespan (sim s)".into(),
                format!("{:.1}", summary.makespan_s),
            ],
            vec![
                "throughput (req/sim s)".into(),
                format!("{:.1}", summary.throughput_rps),
            ],
            vec![
                "steps (prefill+decode)".into(),
                format!("{}+{}", summary.prefill_steps, summary.decode_steps),
            ],
            vec![
                "queue depth (mean/max)".into(),
                format!(
                    "{:.2}/{}",
                    summary.mean_queue_depth, summary.max_queue_depth
                ),
            ],
            vec![
                "e2e mean (ms)".into(),
                format!("{:.1}", summary.e2e_mean_ms),
            ],
            vec![
                "ttft p99 (ms)".into(),
                format!("{:.1}", summary.ttft_p99_ms),
            ],
        ],
    );

    ctx.metric("requests", summary.requests as f64);
    ctx.metric("completed", summary.completed as f64);
    #[allow(clippy::cast_precision_loss)]
    ctx.metric("sim_events", summary.sim_events as f64);
    ctx.metric("makespan_s", summary.makespan_s);
    ctx.metric("throughput_rps", summary.throughput_rps);
    ctx.metric("tokens_per_sec", summary.tokens_per_sec);
    ctx.metric("mean_queue_depth", summary.mean_queue_depth);
    ctx.metric("max_queue_depth", summary.max_queue_depth as f64);

    // Measured numbers: stdout only — never ctx.line, so the transcript
    // and JSON stay byte-identical run to run and across thread counts.
    #[allow(clippy::cast_precision_loss)]
    let events_per_sec = summary.sim_events as f64 / wall.max(1e-9);
    ctx.perf("events_per_sec", events_per_sec);
    ctx.perf("wall_seconds", wall);
    println!();
    println!("measured: {events_per_sec:.0} events/sec ({wall:.2} s wall)");
    if let Some(rss) = peak_rss_bytes() {
        #[allow(clippy::cast_precision_loss)]
        ctx.perf("peak_rss_bytes", rss as f64);
        println!(
            "measured: peak RSS {:.1} MiB",
            rss as f64 / (1024.0 * 1024.0)
        );
    }

    ctx.finish(&summary);
}
