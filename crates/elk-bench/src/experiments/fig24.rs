//! Fig. 24: achieved TFLOPS during the Llama-2-13B training forward pass
//! at varied available compute, NoC bandwidth, and (cheap) off-chip
//! bandwidth — the compute-bound regime where HBM hardly matters.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_sim::SimOptions;
use elk_units::ByteRate;

use crate::ctx::Ctx;
use crate::experiments::{pod_tflops, run_designs};

/// Achieved training throughput for one projected-hardware point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Interconnect topology label.
    pub topology: String,
    /// Per-chip NoC bandwidth (TB/s).
    pub noc_tbps: f64,
    /// Per-chip HBM bandwidth (GB/s).
    pub hbm_gbps: f64,
    /// Hardware peak pod TFLOPS.
    pub available_tflops: f64,
    /// Achieved pod TFLOPS for Static, ELK-Full, Ideal.
    pub achieved: Vec<f64>,
}

const DESIGNS: [Design; 3] = [Design::Static, Design::ElkFull, Design::Ideal];

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 24: training forward pass — achieved vs available TFLOPS");
    let scales: &[f64] = if ctx.full {
        &[0.5, 1.0, 1.5]
    } else {
        &[0.5, 1.5]
    };
    let nocs: &[f64] = &[32.0, 48.0];
    let hbms: &[f64] = &[300.0, 400.0];
    type TopoPreset = (&'static str, fn() -> elk_hw::SystemConfig);
    let topos: &[TopoPreset] = if ctx.full {
        &[
            ("all-to-all", presets::ipu_pod4),
            ("mesh", presets::ipu_pod4_mesh),
        ]
    } else {
        &[("all-to-all", presets::ipu_pod4)]
    };
    let graph = zoo::llama2_13b().build(Workload::training_forward(4, 2048), 4);
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for (topo_name, mk) in topos {
        for &noc in nocs {
            for &scale in scales {
                let mut sys = mk().with_total_noc_bandwidth(ByteRate::tib_per_sec(noc));
                sys.chip = sys.chip.with_compute_scale(scale);
                let available = sys.total_matmul_rate().as_tera();
                let base_runner = DesignRunner::new(sys).with_threads(ctx.threads);
                let catalog = base_runner.catalog(&graph).expect("catalog");
                for &hbm in hbms {
                    let runner = base_runner.with_system(
                        base_runner
                            .system()
                            .with_total_hbm_bandwidth(ByteRate::gib_per_sec(hbm)),
                    );
                    let outs =
                        run_designs(&runner, &graph, &catalog, &DESIGNS, &SimOptions::default());
                    let achieved: Vec<f64> = outs
                        .iter()
                        .map(|o| pod_tflops(o, runner.system().chips))
                        .collect();
                    cells.push(vec![
                        topo_name.to_string(),
                        format!("{noc:.0}"),
                        format!("{hbm:.0}"),
                        format!("{available:.0}"),
                        format!("{:.0}", achieved[0]),
                        format!("{:.0}", achieved[1]),
                        format!("{:.0}", achieved[2]),
                    ]);
                    rows.push(Row {
                        topology: topo_name.to_string(),
                        noc_tbps: noc,
                        hbm_gbps: hbm,
                        available_tflops: available,
                        achieved,
                    });
                }
            }
        }
    }
    ctx.table(
        &[
            "topology",
            "NoC TB/s",
            "HBM GB/s",
            "avail TFLOPS",
            "Static",
            "ELK-Full",
            "Ideal",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): training is compute-bound — achieved TFLOPS scales");
    ctx.line("with available compute, a few hundred GB/s of off-chip bandwidth suffices,");
    ctx.line("and achieved stays below peak (imperfect MatMul shapes).");
    for r in &rows {
        ctx.metric(
            format!(
                "{}.noc{:.0}.hbm{:.0}.elk_full_tflops",
                r.topology, r.noc_tbps, r.hbm_gbps
            ),
            r.achieved[1],
        );
    }
    ctx.finish(&rows);
}
