//! Tenancy: admission control against an open front door on a burst
//! overload — the multi-tenant trade the single-tenant serving rows
//! cannot show. New to this reproduction (no paper analogue).
//!
//! One seeded burst-train trace tagged with four tenants replays twice
//! through the multi-tenant engine: once with every request admitted
//! (`open`), once with the best-effort class rate-limited and shed
//! under queue pressure (`managed`). The premium tenant is never
//! limited in either run. The headline claim — asserted, not just
//! reported — is that admission control strictly improves the premium
//! tenant's goodput under overload, at the cost of rejected
//! best-effort traffic (the fairness shift is visible in the Jain
//! index recorded for both runs).

use serde::Serialize;

use elk_baselines::Design;
use elk_cluster::{ClusterServeConfig, ParallelismPlan, TenancyServingReport, TenantServingSim};
use elk_model::{zoo, SeqBuckets};
use elk_serve::{BatchConfig, RouterPolicy, ShedPolicy, SloConfig, TenancyConfig, TenantClass};
use elk_trace::{LengthModel, RateShape, TraceGenConfig};
use elk_units::Seconds;

use crate::ctx::{default_system, Ctx};

/// One admission policy's outcome on the shared overload trace.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Policy label: `open` or `managed`.
    pub policy: String,
    /// Requests admitted directly at first offer.
    pub admitted: usize,
    /// Requests dropped by the rate limiter or the load shedder.
    pub rejected: usize,
    /// Requests deferred once by the load shedder.
    pub deferred: usize,
    /// The premium tenant's class-SLO goodput (req/s).
    pub premium_goodput_rps: f64,
    /// The premium tenant's 99th-percentile TTFT (ms).
    pub premium_ttft_p99_ms: f64,
    /// Summed best-effort goodput across the other tenants (req/s).
    pub best_effort_goodput_rps: f64,
    /// Jain fairness index over per-tenant goodput shares.
    pub jain_fairness: f64,
}

/// The shared serving shape: two single-chip groups, paper batching
/// knobs, and a class SLO tight enough that queueing under the bursts
/// actually costs goodput.
fn pod_config(threads: usize) -> ClusterServeConfig {
    let mut model = zoo::llama2_13b();
    model.layers = 2;
    ClusterServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_prefill_tokens: 4096,
            seq_buckets: SeqBuckets::new(256, 2048),
            bucket_batch: true,
        },
        slo: SloConfig {
            ttft: Seconds::from_millis(400.0),
            tpot: Seconds::from_millis(60.0),
        },
        threads,
        ..ClusterServeConfig::new(model, ParallelismPlan::new(1, 1, 2))
    }
}

/// The two-class ladder: premium (never limited, never shed) and
/// best-effort (rate-limited + sheddable only when `limit` is on).
fn tenancy(limit: bool) -> TenancyConfig {
    let slo = SloConfig {
        ttft: Seconds::from_millis(400.0),
        tpot: Seconds::from_millis(60.0),
    };
    TenancyConfig {
        classes: vec![
            TenantClass {
                slo,
                ..TenantClass::named("premium")
            },
            TenantClass {
                priority: 16,
                sheddable: true,
                rate_rps: limit.then_some(40.0),
                burst: 4,
                slo,
                ..TenantClass::named("best_effort")
            },
        ],
        tenants: vec![("t0".to_string(), "premium".to_string())],
        default_class: "best_effort".to_string(),
        shed_queue_depth: limit.then_some(2.0),
        shed_policy: ShedPolicy::Reject,
        ..TenancyConfig::default()
    }
}

fn summarize(policy: &str, r: &TenancyServingReport) -> Row {
    let premium = r
        .tenants
        .iter()
        .find(|t| t.class == "premium")
        .expect("the premium tenant appears in the trace");
    Row {
        policy: policy.to_string(),
        admitted: r.admitted,
        rejected: r.rejected,
        deferred: r.deferred,
        premium_goodput_rps: premium.goodput_rps,
        premium_ttft_p99_ms: premium.ttft.p99.as_millis(),
        best_effort_goodput_rps: r
            .tenants
            .iter()
            .filter(|t| t.class == "best_effort")
            .map(|t| t.goodput_rps)
            .sum(),
        jain_fairness: r.jain_fairness,
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if admission control fails its headline claim: premium
/// goodput strictly above the open-door run's, with a nonzero rejected
/// count proving the limiter actually engaged.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Tenancy: admission control vs open door, burst overload, 4 tenants");
    // Bursts at ~8x what the two groups sustain, with a floor the pod
    // clears easily — the premium tenant only suffers when best-effort
    // piles into the queues ahead of it.
    let requests = if ctx.full { 720 } else { 240 };
    let file = TraceGenConfig {
        seed: 0x7e17,
        requests,
        rate: RateShape::BurstTrain {
            base_rps: 40.0,
            burst_rps: 800.0,
            period_s: 1.0,
            burst_s: 0.25,
        },
        prompt_len: LengthModel::HeavyTail {
            lo: 64,
            alpha: 1.2,
            cap: 2048,
        },
        output_len: LengthModel::Uniform { lo: 4, hi: 12 },
        tenants: 4,
    }
    .generate();
    let tenant_ids = file.tenant_assignments();
    let trace = file.to_request_trace();
    ctx.line(format!(
        "{} requests over {:.3} s across {} tenants: 0.25 s bursts at 800 rps on a 40 rps floor",
        trace.len(),
        trace.duration().as_secs(),
        4
    ));

    let system = default_system();
    let design = Design::ElkFull;
    let mut rows = Vec::new();
    for (label, limit) in [("open", false), ("managed", true)] {
        let mut sim =
            TenantServingSim::new(system.clone(), pod_config(ctx.threads), tenancy(limit))
                .expect("tenancy config is valid");
        let r = sim
            .run(design, RouterPolicy::LeastOutstanding, &trace, &tenant_ids)
            .expect("tenancy serving run");
        assert_eq!(
            r.admitted + r.rejected + r.deferred,
            trace.len(),
            "{label}: every arrival gets exactly one disposition"
        );
        rows.push(summarize(label, &r));
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{}/{}/{}", r.admitted, r.rejected, r.deferred),
                format!("{:.2}", r.premium_goodput_rps),
                format!("{:.1}", r.premium_ttft_p99_ms),
                format!("{:.2}", r.best_effort_goodput_rps),
                format!("{:.3}", r.jain_fairness),
            ]
        })
        .collect();
    ctx.table(
        &[
            "policy",
            "adm/rej/def",
            "prem goodput",
            "prem TTFT-p99",
            "b-e goodput",
            "jain",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected: the open door lets best-effort bursts queue ahead of premium,");
    ctx.line("dragging its TTFT past the class SLO; the managed run sheds that backlog,");
    ctx.line("so premium goodput rises while the Jain index shifts toward the survivors.");

    let open = &rows[0];
    let managed = &rows[1];
    assert_eq!(open.rejected, 0, "the open door must admit everything");
    assert!(
        managed.rejected > 0,
        "overload must trigger admission control"
    );
    assert!(
        managed.premium_goodput_rps > open.premium_goodput_rps,
        "admission control must protect premium goodput ({:.2} vs {:.2})",
        managed.premium_goodput_rps,
        open.premium_goodput_rps
    );

    for r in &rows {
        ctx.metric(format!("{}.admitted", r.policy), r.admitted as f64);
        ctx.metric(format!("{}.rejected", r.policy), r.rejected as f64);
        ctx.metric(
            format!("{}.premium.goodput_rps", r.policy),
            r.premium_goodput_rps,
        );
        ctx.metric(
            format!("{}.premium.ttft_p99_ms", r.policy),
            r.premium_ttft_p99_ms,
        );
        ctx.metric(
            format!("{}.best_effort.goodput_rps", r.policy),
            r.best_effort_goodput_rps,
        );
        ctx.metric(format!("{}.jain_fairness", r.policy), r.jain_fairness);
    }
    ctx.finish(&rows);
}
