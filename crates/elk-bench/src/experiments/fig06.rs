//! Fig. 6: HBM bandwidth demand over time for different per-core preload
//! space sizes. Small preload spaces leave the demand spiky (stalls
//! between bursts); larger spaces smooth it.

use serde::Serialize;

use elk_baselines::{static_plan_with_budget, DesignRunner, PreloadMode};
use elk_model::zoo;
use elk_sim::{simulate, SimOptions};
use elk_units::Bytes;

use crate::ctx::{build_llm, default_system, default_workload, Ctx};

/// HBM-demand time series for one preload-space size.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Model name.
    pub model: String,
    /// Preload-space size (KiB per core).
    pub preload_space_kib: u64,
    /// Mean HBM demand per time bucket, TB/s.
    pub hbm_tbps: Vec<f64>,
    /// Coefficient of variation of the demand (spikiness metric).
    pub cv: f64,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 6: HBM bandwidth demand over time vs preload space size");
    let system = default_system();
    let runner = DesignRunner::new(system.clone()).with_threads(ctx.threads);
    let capacity = system.chip.usable_sram_per_core();
    let mut all = Vec::new();

    for cfg in [zoo::llama2_13b(), zoo::gemma2_27b(), zoo::opt_30b()] {
        let graph = build_llm(&cfg, default_workload());
        let catalog = runner.catalog(&graph).expect("catalog");
        for kib in [128u64, 256, 384] {
            let preload = Bytes::kib(kib);
            let exec = capacity.saturating_sub(preload);
            let Some(prog) = static_plan_with_budget(
                &graph,
                &catalog,
                &system,
                exec,
                preload,
                PreloadMode::MinFootprint,
            ) else {
                ctx.line(format!(
                    "{}: {kib} KiB preload space infeasible",
                    graph.name()
                ));
                continue;
            };
            let rep = simulate(&prog, &system, &SimOptions::default().with_trace(48));
            let trace = rep.trace.expect("trace");
            let tbps: Vec<f64> = trace.hbm.iter().map(|r| r / 1e12).collect();
            let mean = tbps.iter().sum::<f64>() / tbps.len() as f64;
            let var = tbps.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tbps.len() as f64;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            ctx.line(format!(
                "{} preload={kib:>3} KiB: mean {mean:.2} TB/s, CV {cv:.2}, trace: {}",
                graph.name(),
                sparkline(&tbps)
            ));
            all.push(Series {
                model: graph.name().to_string(),
                preload_space_kib: kib,
                hbm_tbps: tbps,
                cv,
            });
        }
    }
    ctx.line("");
    ctx.line("Expected shape (paper): larger preload spaces smooth the demand (lower CV)");
    ctx.line("and raise the sustained rate.");
    for s in &all {
        ctx.metric(
            format!("{}.preload{}kib.cv", s.model, s.preload_space_kib),
            s.cv,
        );
    }
    ctx.finish(&all);
}

/// A coarse ASCII sparkline for terminal output.
pub(crate) fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    values
        .iter()
        .map(|&v| GLYPHS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}
