//! Fig. 20: Llama-2-13B latency breakdown vs pod HBM bandwidth on the
//! all-to-all fabric.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::presets;
use elk_model::zoo;
use elk_sim::SimOptions;
use elk_units::ByteRate;

use crate::ctx::{build_llm, default_workload, Ctx};
use crate::experiments::run_designs;

/// Time breakdown for one HBM-bandwidth point under one design.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Pod HBM bandwidth (TB/s).
    pub hbm_tbps: f64,
    /// Design name.
    pub design: String,
    /// Preload-only time (ms).
    pub preload_ms: f64,
    /// Execute-only time (ms).
    pub execute_ms: f64,
    /// Overlapped preload/execute time (ms).
    pub overlapped_ms: f64,
    /// Interconnect-throttled time (ms).
    pub interconnect_ms: f64,
    /// Total makespan (ms).
    pub total_ms: f64,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 20: Llama-2-13B latency breakdown vs HBM bandwidth (all-to-all)");
    let bws: &[f64] = if ctx.full {
        &[6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
    } else {
        &[8.0, 12.0, 16.0]
    };
    let base = DesignRunner::new(presets::ipu_pod4()).with_threads(ctx.threads);
    let graph = build_llm(&zoo::llama2_13b(), default_workload());
    let catalog = base.catalog(&graph).expect("catalog");
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for &bw in bws {
        let runner = base.with_system(
            base.system()
                .with_total_hbm_bandwidth(ByteRate::tib_per_sec(bw)),
        );
        let outs = run_designs(
            &runner,
            &graph,
            &catalog,
            &Design::ALL,
            &SimOptions::default(),
        );
        for o in &outs {
            let b = o.report.buckets;
            cells.push(vec![
                format!("{bw:.0}"),
                o.design.to_string(),
                format!("{:.2}", b.preload.as_millis()),
                format!("{:.2}", b.execute.as_millis()),
                format!("{:.2}", b.overlapped.as_millis()),
                format!("{:.2}", b.interconnect.as_millis()),
                format!("{:.2}", o.report.total.as_millis()),
            ]);
            rows.push(Row {
                hbm_tbps: bw,
                design: o.design.to_string(),
                preload_ms: b.preload.as_millis(),
                execute_ms: b.execute.as_millis(),
                overlapped_ms: b.overlapped.as_millis(),
                interconnect_ms: b.interconnect.as_millis(),
                total_ms: o.report.total.as_millis(),
            });
        }
    }
    ctx.table(
        &[
            "HBM TB/s",
            "design",
            "pre",
            "exe",
            "ovl",
            "noc",
            "total(ms)",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): Basic/Static/ELK-Dyn interconnect contention grows");
    ctx.line("with HBM bandwidth; ELK-Full's reordering suppresses it.");
    for r in &rows {
        ctx.metric(
            format!("hbm{:.0}.{}.total_ms", r.hbm_tbps, r.design),
            r.total_ms,
        );
    }
    ctx.finish(&rows);
}
