//! Cluster: the auto-parallelism search over the IPU-POD4 `(tp, pp,
//! dp)` grid for the paper's default decode workload — the pod-level
//! view the single-chip figures cannot show.
//!
//! Not a paper figure: the paper evaluates one tensor-parallel layout;
//! this experiment explores every layout the pod supports and reports
//! the grid, the winner, and its pipeline timeline.

use serde::Serialize;

use elk_baselines::Design;
use elk_cluster::{ClusterEstimator, ClusterOptions};
use elk_model::Workload;
use elk_sim::SimOptions;

use crate::ctx::{default_system, Ctx};

/// One `(tp, pp, dp)` candidate's outcome.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Pipeline-parallel degree.
    pub pp: u64,
    /// Data-parallel degree.
    pub dp: u64,
    /// Step time in ms (`None` when infeasible).
    pub step_ms: Option<f64>,
    /// `true` for the chosen plan.
    pub chosen: bool,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Cluster: (tp, pp, dp) auto-parallelism over the IPU-POD4");
    // Quick mode trims the model so the grid stays seconds-scale; the
    // layout ordering is depth-independent for a homogeneous stack.
    let mut model = elk_model::zoo::llama2_13b();
    if !ctx.full {
        model.layers = 4;
    }
    let workload = Workload::decode(32, 2048);
    let est = ClusterEstimator::new(
        default_system(),
        ClusterOptions {
            threads: ctx.threads,
            ..ClusterOptions::default()
        },
    );
    let outcome = est
        .search(&model, workload, Design::ElkFull, &SimOptions::default())
        .expect("the pod4 grid has feasible plans");

    let best = outcome.best.plan;
    let rows: Vec<Row> = outcome
        .candidates
        .iter()
        .map(|c| Row {
            tp: c.plan.tp,
            pp: c.plan.pp,
            dp: c.plan.dp,
            step_ms: c.step_total.map(|t| t.as_millis()),
            chosen: c.plan == best,
        })
        .collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("tp{}", r.tp),
                format!("pp{}", r.pp),
                format!("dp{}", r.dp),
                r.step_ms
                    .map_or_else(|| "infeasible".into(), |ms| format!("{ms:.3}")),
                if r.chosen { "<= chosen" } else { "" }.to_string(),
            ]
        })
        .collect();
    ctx.table(&["tp", "pp", "dp", "step(ms)", ""], &cells);

    let e = &outcome.best;
    ctx.line("");
    ctx.line(format!(
        "chosen {} on {} of {} chips: step {:.3} ms, bubble {:.1}%, scaling efficiency {}",
        e.plan,
        e.chips_used,
        e.chips,
        e.step_total.as_millis(),
        e.bubble_fraction * 100.0,
        e.scaling_efficiency
            .map_or_else(|| "n/a".into(), |s| format!("{s:.2}")),
    ));
    ctx.line("Expected shape: decode is bandwidth-bound, so spreading weights across all");
    ctx.line("chips (high tp) beats pipelining at this batch; dp only splits the batch.");

    ctx.metric("chosen_tp", e.plan.tp as f64);
    ctx.metric("chosen_pp", e.plan.pp as f64);
    ctx.metric("chosen_dp", e.plan.dp as f64);
    ctx.metric("chosen_step_ms", e.step_total.as_millis());
    ctx.metric("bubble_fraction", e.bubble_fraction);
    if let Some(s) = e.scaling_efficiency {
        ctx.metric("scaling_efficiency", s);
    }
    ctx.finish(&rows);
}
