//! Fig. 5: execution time vs execution-space size for representative
//! operators — the intra-operator memory↔time Pareto curves.

use serde::Serialize;

use elk_baselines::DesignRunner;
use elk_model::{zoo, OpRole};

use crate::ctx::{build_llm, default_system, default_workload, Ctx};

/// Pareto frontier of one operator's partition plans.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Model name.
    pub model: String,
    /// Operator name.
    pub op: String,
    /// `(execution space KiB, execution time us)` Pareto points.
    pub points: Vec<(f64, f64)>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 5: execution time vs per-core execution space (Pareto plans)");
    let runner = DesignRunner::new(default_system()).with_threads(ctx.threads);
    let mut all = Vec::new();

    for cfg in [zoo::llama2_13b(), zoo::gemma2_27b(), zoo::opt_30b()] {
        let graph = build_llm(&cfg, default_workload());
        let catalog = runner.catalog(&graph).expect("catalog");
        let span = graph.layer_spans()[1].ops.clone();
        for (role, label) in [
            (OpRole::AttnQkv, "MatMul: Attention_QKV"),
            (OpRole::AttnScores, "BatchMatMul: Attention_Head"),
            (OpRole::AttnNorm, "MatMul: Layer_Norm"),
            (OpRole::MlpDown, "MatMul: Output_FFN"),
        ] {
            let Some(op) = graph.ops()[span.clone()].iter().find(|o| o.role() == role) else {
                continue;
            };
            let plans = catalog.op(op.id());
            let points: Vec<(f64, f64)> = plans
                .exec_frontier
                .iter()
                .map(|p| (p.space.as_f64() / 1024.0, p.time.as_micros()))
                .collect();
            ctx.line(format!("{} / {label}:", graph.name()));
            for chunk in points.chunks(6) {
                let cells: Vec<String> = chunk
                    .iter()
                    .map(|(kb, us)| format!("{kb:.0}KB:{us:.1}us"))
                    .collect();
                ctx.line(format!("    {}", cells.join("  ")));
            }
            all.push(Series {
                model: graph.name().to_string(),
                op: label.to_string(),
                points,
            });
        }
    }
    ctx.line("");
    ctx.line("Expected shape (paper): each operator's faster plans require more execution");
    ctx.line("space; spanning roughly 10..500 KB and 10..100+ us.");
    for s in &all {
        ctx.metric(
            format!("{}.{}.frontier_points", s.model, s.op),
            s.points.len() as f64,
        );
    }
    ctx.finish(&all);
}
