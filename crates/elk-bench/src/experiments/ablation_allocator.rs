//! Ablation: optimality of the greedy cost-aware allocator (§4.3) versus
//! exhaustive search, on real allocation windows sampled from a compiled
//! model — the §8 SAT-solver discussion quantified.

use serde::Serialize;

use elk_baselines::DesignRunner;
use elk_core::{allocate, FrontierPoint};
use elk_model::{zoo, Workload};
use elk_units::{Bytes, Seconds};

use crate::ctx::{build_llm, default_system, Ctx};

/// Allocator-vs-ILP comparison summary.
#[derive(Debug, Serialize)]
pub struct Summary {
    /// Scheduling windows compared.
    pub windows: usize,
    /// Windows where the greedy allocator matched the ILP optimum.
    pub agreements: usize,
    /// Mean objective gap to the optimum (fraction).
    pub mean_gap: f64,
    /// Worst-case objective gap (fraction).
    pub worst_gap: f64,
    /// Windows where one side found a fit the other missed.
    pub feasibility_mismatches: usize,
}

fn exhaustive(
    current: &[FrontierPoint],
    windows: &[&[FrontierPoint]],
    capacity: Bytes,
) -> Option<Seconds> {
    // Depth-first over all combinations (small windows only).
    fn rec(
        windows: &[&[FrontierPoint]],
        k: usize,
        space: Bytes,
        time: Seconds,
        capacity: Bytes,
        best: &mut Option<Seconds>,
    ) {
        if k == windows.len() {
            if space <= capacity && best.is_none_or(|b| time < b) {
                *best = Some(time);
            }
            return;
        }
        for p in windows[k] {
            rec(
                windows,
                k + 1,
                space + p.space,
                time + p.time,
                capacity,
                best,
            );
        }
    }
    let mut best = None;
    for c in current {
        rec(windows, 0, c.space, c.time, capacity, &mut best);
    }
    best
}

/// Runs the ablation.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Ablation: greedy allocator vs exhaustive optimum (sampled windows)");
    let system = default_system();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 4;
    let graph = build_llm(&cfg, Workload::decode(32, 2048));
    let runner = DesignRunner::new(system.clone()).with_threads(ctx.threads);
    let catalog = runner.catalog(&graph).expect("catalog");
    let capacity = system.chip.usable_sram_per_core();

    let mut windows_checked = 0usize;
    let mut agreements = 0usize;
    let mut gaps: Vec<f64> = Vec::new();
    let mut mismatches = 0usize;

    // Sample windows: current op i with the next w ops' preload frontiers.
    for i in (0..graph.len().saturating_sub(6)).step_by(3) {
        for w in [2usize, 4] {
            let cur = &catalog.op(graph.ops()[i].id()).exec_frontier;
            let cur: Vec<FrontierPoint> = cur.iter().copied().take(8).collect();
            let window_points: Vec<Vec<FrontierPoint>> = (1..=w)
                .map(|d| {
                    catalog
                        .op(graph.ops()[i + d].id())
                        .preload_points(0)
                        .into_iter()
                        .take(4)
                        .collect()
                })
                .collect();
            let refs: Vec<&[FrontierPoint]> = window_points.iter().map(Vec::as_slice).collect();
            // Tighten capacity so the allocator has real work to do.
            for frac in [1.0f64, 0.6, 0.4] {
                let cap = capacity.scale(frac);
                let greedy = allocate(&cur, &refs, cap);
                let optimum = exhaustive(&cur, &refs, cap);
                windows_checked += 1;
                match (greedy, optimum) {
                    (None, None) => agreements += 1,
                    (Some(g), Some(o)) => {
                        let gt = (g.exec_time + g.distribute_time).as_secs();
                        let gap = if o.as_secs() > 0.0 {
                            gt / o.as_secs() - 1.0
                        } else {
                            0.0
                        };
                        gaps.push(gap.max(0.0));
                        if gap < 1e-9 {
                            agreements += 1;
                        }
                    }
                    _ => mismatches += 1,
                }
            }
        }
    }

    let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let worst_gap = gaps.iter().copied().fold(0.0, f64::max);
    let summary = Summary {
        windows: windows_checked,
        agreements,
        mean_gap,
        worst_gap,
        feasibility_mismatches: mismatches,
    };
    ctx.line(format!(
        "windows: {windows_checked} | exact-optimal: {agreements} ({:.1}%) | mean gap {:.2}% | worst gap {:.2}% | feasibility mismatches {mismatches}",
        100.0 * agreements as f64 / windows_checked.max(1) as f64,
        100.0 * mean_gap,
        100.0 * worst_gap
    ));
    ctx.line("");
    ctx.line("Reading: the greedy Δ = space/time rule is near-optimal on real frontiers,");
    ctx.line("justifying §8's choice of an O(P·K) heuristic over exponential solvers.");
    assert_eq!(
        summary.feasibility_mismatches, 0,
        "greedy missed a feasible window"
    );
    ctx.finish(&summary);
}
