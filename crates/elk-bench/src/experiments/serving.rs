//! Serving: request-level tail latency and goodput of every design on a
//! bursty trace — the end-to-end view the paper's per-batch numbers
//! (Fig. 17) do not show. New to this reproduction (no paper analogue).

use serde::Serialize;

use elk_baselines::Design;
use elk_model::zoo;
use elk_serve::{ArrivalProcess, LengthDist, ServeConfig, ServingSim, SloConfig, TraceConfig};
use elk_units::Seconds;

use crate::ctx::{default_system, Ctx};

/// Serving metrics of one design at one replica count.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Design name.
    pub design: String,
    /// Chip-group replica count.
    pub replicas: usize,
    /// Median time-to-first-token (ms).
    pub ttft_p50_ms: f64,
    /// 99th-percentile time-to-first-token (ms).
    pub ttft_p99_ms: f64,
    /// Mean time-per-output-token (ms).
    pub tpot_mean_ms: f64,
    /// 99th-percentile time-per-output-token (ms).
    pub tpot_p99_ms: f64,
    /// 99th-percentile end-to-end latency (ms).
    pub e2e_p99_ms: f64,
    /// Trace start to last token (ms).
    pub makespan_ms: f64,
    /// SLO-meeting completions per second.
    pub goodput_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// Plan-cache hits during the run.
    pub cache_hits: u64,
    /// Plan-cache misses (compiles) during the run.
    pub cache_misses: u64,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Serving: TTFT/TPOT percentiles + goodput, bursty trace, 4-chip pod");
    let requests = if ctx.full { 96 } else { 48 };
    let trace = TraceConfig {
        seed: 0x5eed,
        requests,
        arrivals: ArrivalProcess::Bursty {
            rate_rps: 300.0,
            burst_factor: 3.5,
            period_s: 0.2,
            duty: 0.25,
        },
        prompt_len: LengthDist::Uniform { lo: 1700, hi: 3600 },
        output_len: LengthDist::Uniform { lo: 96, hi: 224 },
    }
    .generate();
    ctx.line(format!(
        "{} requests over {:.3} s, {} output tokens",
        trace.len(),
        trace.duration().as_secs(),
        trace.total_output_tokens()
    ));

    let replica_counts: &[usize] = if ctx.full { &[1, 2] } else { &[1] };
    let mut rows = Vec::new();
    for &replicas in replica_counts {
        let mut config = ServeConfig::new(zoo::llama2_13b(), 4)
            .with_replicas(replicas)
            .with_threads(ctx.threads);
        config.batch.max_batch = 32;
        config.slo = SloConfig {
            ttft: Seconds::new(20.0),
            tpot: Seconds::from_millis(25.0),
        };
        let mut sim = ServingSim::new(default_system(), config);
        for design in Design::ALL {
            let r = sim.run(design, &trace).expect("serving run");
            rows.push(Row {
                design: design.to_string(),
                replicas,
                ttft_p50_ms: r.ttft.p50.as_millis(),
                ttft_p99_ms: r.ttft.p99.as_millis(),
                tpot_mean_ms: r.tpot.mean.as_millis(),
                tpot_p99_ms: r.tpot.p99.as_millis(),
                e2e_p99_ms: r.e2e.p99.as_millis(),
                makespan_ms: r.makespan.as_millis(),
                goodput_rps: r.goodput_rps,
                slo_attainment: r.slo_attainment,
                cache_hits: r.cache.hits,
                cache_misses: r.cache.misses,
            });
        }
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                format!("x{}", r.replicas),
                format!("{:.1}", r.ttft_p50_ms),
                format!("{:.1}", r.ttft_p99_ms),
                format!("{:.2}", r.tpot_mean_ms),
                format!("{:.2}", r.tpot_p99_ms),
                format!("{:.1}", r.e2e_p99_ms),
                format!("{:.2}", r.goodput_rps),
                format!("{:.0}%", r.slo_attainment * 100.0),
                format!("{}/{}", r.cache_hits, r.cache_misses),
            ]
        })
        .collect();
    ctx.table(
        &[
            "design", "repl", "TTFT-p50", "TTFT-p99", "TPOT", "TPOT-p99", "E2E-p99", "goodput",
            "SLO", "hit/miss",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected: ELK-Full tracks Ideal on TPOT and goodput; Basic pays the");
    ctx.line("widest tail. Cache misses stay flat across designs (shared catalogs).");
    for r in &rows {
        ctx.metric(
            format!("{}.x{}.goodput_rps", r.design, r.replicas),
            r.goodput_rps,
        );
        ctx.metric(
            format!("{}.x{}.tpot_mean_ms", r.design, r.replicas),
            r.tpot_mean_ms,
        );
    }
    ctx.finish(&rows);
}
