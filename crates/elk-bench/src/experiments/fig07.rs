//! Fig. 7: per-core inter-core bandwidth demand over time under
//! `MinPreload` (gather everything at execution) vs `MaxPreload`
//! (broadcast everything at preload). MaxPreload slashes inter-core
//! traffic.

use serde::Serialize;

use elk_baselines::{static_plan_with_budget, DesignRunner, PreloadMode};
use elk_model::zoo;
use elk_sim::{simulate, SimOptions};

use crate::ctx::{build_llm, default_system, default_workload, Ctx};
use crate::experiments::fig06::sparkline;

/// Inter-core traffic time series for one preload-state mode.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Model name.
    pub model: String,
    /// Preload-state mode label.
    pub mode: String,
    /// Mean per-core inter-core demand per bucket, GB/s.
    pub intercore_gbps: Vec<f64>,
    /// Mean of the series (GB/s).
    pub mean_gbps: f64,
}

pub(crate) fn trace_mode(
    system: &elk_hw::SystemConfig,
    runner: &DesignRunner,
    cfg: &elk_model::TransformerConfig,
    mode: PreloadMode,
) -> (String, elk_sim::SimReport) {
    let graph = build_llm(cfg, default_workload());
    let catalog = runner.catalog(&graph).expect("catalog");
    let capacity = system.chip.usable_sram_per_core();
    let prog = static_plan_with_budget(
        &graph,
        &catalog,
        system,
        capacity.scale(0.5),
        capacity.scale(0.5),
        mode,
    )
    .expect("static plan");
    let rep = simulate(&prog, system, &SimOptions::default().with_trace(48));
    (graph.name().to_string(), rep)
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 7: per-core inter-core bandwidth demand, MinPreload vs MaxPreload");
    let system = default_system();
    let runner = DesignRunner::new(system.clone()).with_threads(ctx.threads);
    let cores = system.chip.cores as f64;
    let mut all = Vec::new();

    for cfg in [zoo::llama2_13b(), zoo::gemma2_27b(), zoo::opt_30b()] {
        for (mode, label) in [
            (PreloadMode::MinFootprint, "MinPreload"),
            (PreloadMode::MaxBroadcast, "MaxPreload"),
        ] {
            let (model, rep) = trace_mode(&system, &runner, &cfg, mode);
            let trace = rep.trace.expect("trace");
            let series: Vec<f64> = trace.intercore.iter().map(|r| r / cores / 1e9).collect();
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            ctx.line(format!(
                "{model} {label:>10}: mean {mean:.2} GB/s/core, trace: {}",
                sparkline(&series)
            ));
            all.push(Series {
                model,
                mode: label.to_string(),
                intercore_gbps: series,
                mean_gbps: mean,
            });
        }
    }
    ctx.line("");
    ctx.line("Expected shape (paper): MaxPreload's inter-core demand is a fraction of");
    ctx.line("MinPreload's (broadcasting replaces execution-time gathering).");
    for s in &all {
        ctx.metric(format!("{}.{}.mean_gbps", s.model, s.mode), s.mean_gbps);
    }
    ctx.finish(&all);
}
