//! Fig. 22: Llama-2-70B latency at varied total interconnect bandwidth ×
//! HBM bandwidth, both topologies — the "scale them together" insight.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::presets;
use elk_model::zoo;
use elk_sim::SimOptions;
use elk_units::ByteRate;

use crate::ctx::{build_llm, default_workload, Ctx};
use crate::experiments::run_designs;

/// Latency across designs for one NoC/HBM bandwidth point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Interconnect topology label.
    pub topology: String,
    /// Per-chip NoC bandwidth (TB/s).
    pub noc_tbps: f64,
    /// Pod HBM bandwidth (TB/s).
    pub hbm_tbps: f64,
    /// Latency (ms) per design in `Design::ALL` order.
    pub latency_ms: Vec<f64>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 22: Llama-2-70B latency vs pod NoC bandwidth x HBM bandwidth");
    let nocs: &[f64] = if ctx.full {
        &[30.0, 35.0, 40.0, 45.0]
    } else {
        &[30.0, 40.0]
    };
    let hbms: &[f64] = if ctx.full {
        &[8.0, 10.0, 12.0, 14.0]
    } else {
        &[8.0, 14.0]
    };
    let graph = build_llm(&zoo::llama2_70b(), default_workload());
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for (topo_name, base_sys) in [
        ("all-to-all", presets::ipu_pod4()),
        ("mesh", presets::ipu_pod4_mesh()),
    ] {
        for &noc in nocs {
            // Changing the NoC changes the chip: fit a fresh cost model.
            let sys = base_sys.with_total_noc_bandwidth(ByteRate::tib_per_sec(noc));
            let base_runner = DesignRunner::new(sys).with_threads(ctx.threads);
            let catalog = base_runner.catalog(&graph).expect("catalog");
            for &hbm in hbms {
                let runner = base_runner.with_system(
                    base_runner
                        .system()
                        .with_total_hbm_bandwidth(ByteRate::tib_per_sec(hbm)),
                );
                let outs = run_designs(
                    &runner,
                    &graph,
                    &catalog,
                    &Design::ALL,
                    &SimOptions::default(),
                );
                let lat: Vec<f64> = outs.iter().map(|o| o.report.total.as_millis()).collect();
                cells.push(vec![
                    topo_name.to_string(),
                    format!("{noc:.0}"),
                    format!("{hbm:.0}"),
                    format!("{:.2}", lat[0]),
                    format!("{:.2}", lat[1]),
                    format!("{:.2}", lat[2]),
                    format!("{:.2}", lat[3]),
                    format!("{:.2}", lat[4]),
                ]);
                rows.push(Row {
                    topology: topo_name.to_string(),
                    noc_tbps: noc,
                    hbm_tbps: hbm,
                    latency_ms: lat,
                });
            }
        }
    }
    ctx.table(
        &[
            "topology", "NoC TB/s", "HBM TB/s", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): at low HBM bandwidth, extra NoC bandwidth does not");
    ctx.line("help (HBM-bound); at high HBM bandwidth, latency scales with NoC bandwidth —");
    ctx.line("and mesh is the more NoC-sensitive topology.");
    for r in &rows {
        ctx.metric(
            format!(
                "{}.noc{:.0}.hbm{:.0}.elk_full_ms",
                r.topology, r.noc_tbps, r.hbm_tbps
            ),
            r.latency_ms[3],
        );
    }
    ctx.finish(&rows);
}
