//! Table 2: model complexity factors `C, H, P, K, N` on IPU-POD4.
//!
//! `N` counts operators in our per-chip tensor-parallel graphs (the paper
//! counts its emulator's per-chip operator instances, so our `N` is the
//! same order but not identical; see EXPERIMENTS.md).

use serde::Serialize;

use elk_baselines::DesignRunner;
use elk_core::Catalog;
use elk_model::{zoo, GraphStats, ModelGraph, Workload};
use elk_units::Bytes;

use crate::ctx::{build_llm, default_system, default_workload, Ctx};

/// Table 2 statistics for one model.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Cores per chip (`C`).
    pub c: usize,
    /// HBM-heavy operators per layer (`H`).
    pub h: usize,
    /// Partition plans per heavy operator (`P`).
    pub p: usize,
    /// Preload-state choices per heavy operator (`K`).
    pub k: usize,
    /// Total operators per shard (`N`).
    pub n: usize,
}

/// Largest run of consecutive operators (by `ids`) whose minimal preload
/// footprints fit on-chip together — the paper's "max number of operators
/// that fit on-chip".
fn max_resident(graph: &ModelGraph, catalog: &Catalog, ids: &[usize], capacity: Bytes) -> usize {
    let space: Vec<u64> = ids
        .iter()
        .map(|&i| {
            let plans = catalog.op(graph.ops()[i].id());
            (0..plans.exec_frontier.len())
                .map(|f| plans.min_preload_space(f))
                .min()
                .unwrap_or(Bytes::ZERO)
                .get()
        })
        .collect();
    let mut best = 0usize;
    let mut lo = 0usize;
    let mut sum = 0u64;
    for hi in 0..space.len() {
        sum += space[hi];
        while sum > capacity.get() && lo <= hi {
            sum -= space[lo];
            lo += 1;
        }
        best = best.max(hi + 1 - lo);
    }
    best
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Table 2: model complexity factors (C, H, P, K, N)");
    let system = default_system();
    let capacity = system.chip.usable_sram_per_core();

    let mut rows = Vec::new();
    let mut graphs: Vec<ModelGraph> = crate::ctx::llms()
        .iter()
        .map(|cfg| build_llm(cfg, default_workload()))
        .collect();
    graphs.push(zoo::dit_xl().build(Workload::decode(8, 256), 1));

    for graph in &graphs {
        let runner = if graph.shards() == 1 {
            DesignRunner::new(elk_hw::presets::single_chip()).with_threads(ctx.threads)
        } else {
            DesignRunner::new(system.clone()).with_threads(ctx.threads)
        };
        let catalog = runner.catalog(graph).expect("catalog");
        let stats = GraphStats::of(graph);

        let all: Vec<usize> = (0..graph.len()).collect();
        let k = max_resident(graph, &catalog, &all, capacity);
        let heavy_in_layer: Vec<usize> = {
            let span = &graph.layer_spans()[1];
            graph
                .hbm_heavy_ops()
                .iter()
                .map(|id| id.index())
                .filter(|i| span.ops.contains(i))
                .collect()
        };
        let c = max_resident(graph, &catalog, &heavy_in_layer, capacity).min(stats.heavy_per_layer);

        rows.push(Row {
            model: graph.name().to_string(),
            c,
            h: stats.heavy_per_layer,
            p: catalog.max_plans_per_op(),
            k,
            n: graph.len(),
        });
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.c.to_string(),
                r.h.to_string(),
                r.p.to_string(),
                r.k.to_string(),
                r.n.to_string(),
            ]
        })
        .collect();
    ctx.table(&["Model", "C", "H", "P", "K", "N"], &cells);
    ctx.line("");
    ctx.line("Paper (IPU-POD4): Llama2-13B C=6 H=6 P=66 K=88 N=1928; Gemma2-27B 6/6/206/128/2216;");
    ctx.line("OPT-30B 5/6/58/46/2269; Llama2-70B 6/6/168/86/3808; DiT-XL 4/4/123/136/1521.");
    for r in &rows {
        ctx.metric(format!("{}.plans_per_op", r.model), r.p as f64);
        ctx.metric(format!("{}.ops_per_shard", r.model), r.n as f64);
    }
    ctx.finish(&rows);
}
