//! One module per paper table/figure (plus ablations). Each exposes
//! `run(&mut Ctx)`.

pub mod ablation_allocator;
pub mod ablation_reorder;
pub mod ablation_sram;
pub mod autoscale;
pub mod cluster;
pub mod disagg;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig12;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod scale;
pub mod serving;
pub mod table2;
pub mod tenancy;

use elk_baselines::{Design, DesignOutcome, DesignRunner};
use elk_core::Catalog;
use elk_model::ModelGraph;
use elk_sim::SimOptions;

/// Runs a set of designs on one workload, reusing the runner's catalog.
///
/// # Panics
///
/// Panics if planning fails — all shipped experiment configurations are
/// feasible by construction.
pub(crate) fn run_designs(
    runner: &DesignRunner,
    graph: &ModelGraph,
    catalog: &Catalog,
    designs: &[Design],
    sim: &SimOptions,
) -> Vec<DesignOutcome> {
    designs
        .iter()
        .map(|&d| {
            runner
                .run(d, graph, catalog, sim)
                .unwrap_or_else(|e| panic!("{d} failed on {}: {e}", graph.name()))
        })
        .collect()
}

/// Pod-level achieved TFLOPS (the simulator reports per chip).
pub(crate) fn pod_tflops(outcome: &DesignOutcome, chips: u64) -> f64 {
    outcome.report.achieved.as_tera() * chips as f64
}
