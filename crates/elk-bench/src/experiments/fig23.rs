//! Fig. 23: per-token latency at varied core counts (HBM fixed at
//! 2.7 GB/s per core), LLMs on the 4-chip pod and DiT-XL on one chip.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::presets;
use elk_model::{zoo, Workload};
use elk_sim::SimOptions;
use elk_units::ByteRate;

use crate::ctx::{default_workload, Ctx};
use crate::experiments::run_designs;

/// Latency across designs for one core-count point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Cores per chip.
    pub cores: u64,
    /// Latency (ms) per design in `Design::ALL` order.
    pub latency_ms: Vec<f64>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 23: per-token latency vs cores per chip (2.7 GB/s HBM per core)");
    let core_counts: &[u64] = if ctx.full {
        &[736, 1104, 1472, 2208, 2944]
    } else {
        &[736, 1472, 2944]
    };
    let hbm_per_core = ByteRate::new(2.7e9);
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    let llm_cfgs = if ctx.full {
        vec![
            zoo::llama2_13b(),
            zoo::gemma2_27b(),
            zoo::opt_30b(),
            zoo::llama2_70b(),
        ]
    } else {
        vec![zoo::llama2_13b(), zoo::llama2_70b()]
    };

    for &cores in core_counts {
        // LLMs on the 4-chip pod.
        let sys = presets::ipu_pod4().with_cores_and_hbm_per_core(cores, hbm_per_core);
        let runner = DesignRunner::new(sys).with_threads(ctx.threads);
        for cfg in &llm_cfgs {
            let graph = cfg.build(default_workload(), 4);
            let catalog = runner.catalog(&graph).expect("catalog");
            let outs = run_designs(
                &runner,
                &graph,
                &catalog,
                &Design::ALL,
                &SimOptions::default(),
            );
            push(&mut rows, &mut cells, &cfg.name, cores, &outs);
        }
        // DiT-XL on a single chip (paper: up to 1472 cores).
        let dit_sys = presets::single_chip().with_cores_and_hbm_per_core(cores, hbm_per_core);
        let dit_runner = DesignRunner::new(dit_sys).with_threads(ctx.threads);
        let dit = zoo::dit_xl().build(Workload::decode(8, 256), 1);
        let catalog = dit_runner.catalog(&dit).expect("catalog");
        let outs = run_designs(
            &dit_runner,
            &dit,
            &catalog,
            &Design::ALL,
            &SimOptions::default(),
        );
        push(&mut rows, &mut cells, "DiT-XL", cores, &outs);
    }

    ctx.table(
        &[
            "model", "cores", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): ELK-Full wins at every core count (avg 1.71x over");
    ctx.line("Basic, 1.36x over Static); DiT-XL is compute-bound so the gap is smaller but");
    ctx.line("ELK-Full still tracks Ideal.");
    for r in &rows {
        ctx.metric(
            format!("{}.c{}.elk_full_ms", r.model, r.cores),
            r.latency_ms[3],
        );
    }
    ctx.finish(&rows);
}

fn push(
    rows: &mut Vec<Row>,
    cells: &mut Vec<Vec<String>>,
    model: &str,
    cores: u64,
    outs: &[elk_baselines::DesignOutcome],
) {
    let lat: Vec<f64> = outs.iter().map(|o| o.report.total.as_millis()).collect();
    cells.push(vec![
        model.to_string(),
        cores.to_string(),
        format!("{:.2}", lat[0]),
        format!("{:.2}", lat[1]),
        format!("{:.2}", lat[2]),
        format!("{:.2}", lat[3]),
        format!("{:.2}", lat[4]),
    ]);
    rows.push(Row {
        model: model.to_string(),
        cores,
        latency_ms: lat,
    });
}
