//! Autoscale: the elastic dp fleet against static provisioning on a
//! bursty trace — the capacity-vs-latency trade the fixed-dp serving
//! rows cannot show. New to this reproduction (no paper analogue).
//!
//! Three fleets replay one seeded burst-train trace: static `dp = 1`
//! (cheap but swamped in bursts), static `dp = 4` (meets the SLO by
//! paying for peak capacity all the time), and the autoscaler
//! (`1..=4` groups, growing against queue depth and SLO attainment,
//! each spin-up paying a plan-compilation cold start). The headline
//! claim — asserted, not just reported — is that the autoscaler beats
//! static `dp = 1` on SLO goodput while spending fewer chip-seconds
//! than static `dp = 4`.

use serde::Serialize;

use elk_baselines::Design;
use elk_cluster::{
    AutoscaleConfig, AutoscaleServingSim, ClusterServeConfig, ClusterServingSim, ParallelismPlan,
};
use elk_model::{zoo, SeqBuckets};
use elk_serve::{BatchConfig, RouterPolicy, SloConfig};
use elk_trace::{LengthModel, RateShape, TraceGenConfig};
use elk_units::Seconds;

use crate::ctx::{default_system, Ctx};

/// One fleet's outcome on the shared burst trace.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Fleet label: `static_dp1`, `static_dp4`, or `autoscale`.
    pub fleet: String,
    /// Requests completed (always the full trace — conservation).
    pub completed: usize,
    /// 99th-percentile time-to-first-token (ms).
    pub ttft_p99_ms: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second.
    pub goodput_rps: f64,
    /// Chip-seconds provisioned (static: `chips x makespan`;
    /// autoscale: the on-time integral over the fleet).
    pub chip_seconds: f64,
    /// Most groups simultaneously provisioned.
    pub peak_groups: usize,
    /// Spin-ups (autoscale only; includes the initial floor).
    pub scale_ups: u64,
    /// Drains back down (autoscale only).
    pub scale_downs: u64,
    /// Spin-ups that paid a plan-compilation cold start.
    pub cold_starts: u64,
    /// Total cold-start wait (ms).
    pub cold_start_total_ms: f64,
}

/// The shared per-group serving shape: one chip per group (`tp = pp =
/// 1`), paper batching knobs, and a tight interactive SLO the bursts
/// can actually violate.
fn fleet_config(dp: u64, threads: usize) -> ClusterServeConfig {
    let mut model = zoo::llama2_13b();
    model.layers = 2;
    ClusterServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_prefill_tokens: 4096,
            seq_buckets: SeqBuckets::new(256, 2048),
            bucket_batch: true,
        },
        slo: SloConfig {
            ttft: Seconds::from_millis(150.0),
            tpot: Seconds::from_millis(25.0),
        },
        threads,
        ..ClusterServeConfig::new(model, ParallelismPlan::new(1, 1, dp))
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the autoscaler fails its headline claim: SLO goodput
/// above static `dp = 1` at fewer chip-seconds than static `dp = 4`.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Autoscale: elastic dp fleet vs static provisioning, burst-train trace");
    // ~90 requests per 1 s period: a 0.25 s burst at ~4x one group's
    // sustained capacity, then a 20 rps floor one group serves easily.
    // Quick mode spans ~4 periods, full ~11 — enough that the groups
    // the first burst spins up (paying the cold start) are warm and
    // waiting for the later bursts.
    let requests = if ctx.full { 960 } else { 360 };
    let trace = TraceGenConfig {
        seed: 0xe1a5,
        requests,
        rate: RateShape::BurstTrain {
            base_rps: 20.0,
            burst_rps: 520.0,
            period_s: 1.0,
            burst_s: 0.25,
        },
        prompt_len: LengthModel::HeavyTail {
            lo: 64,
            alpha: 1.2,
            cap: 2048,
        },
        output_len: LengthModel::Uniform { lo: 4, hi: 12 },
        tenants: 4,
    }
    .generate()
    .to_request_trace();
    ctx.line(format!(
        "{} requests over {:.3} s ({} output tokens): 0.25 s bursts at 520 rps on a 20 rps floor",
        trace.len(),
        trace.duration().as_secs(),
        trace.total_output_tokens()
    ));

    let system = default_system();
    let design = Design::ElkFull;
    let mut rows = Vec::new();

    for dp in [1u64, 4] {
        let mut sim = ClusterServingSim::new(system.clone(), fleet_config(dp, ctx.threads))
            .expect("static fleet config is valid");
        let r = sim
            .run(design, RouterPolicy::LeastOutstanding, &trace)
            .expect("static serving run");
        rows.push(Row {
            fleet: format!("static_dp{dp}"),
            completed: r.completed,
            ttft_p99_ms: r.ttft.p99.as_millis(),
            slo_attainment: r.slo_attainment,
            goodput_rps: r.goodput_rps,
            chip_seconds: r.makespan.as_secs() * dp as f64,
            peak_groups: dp as usize,
            scale_ups: 0,
            scale_downs: 0,
            cold_starts: 0,
            cold_start_total_ms: 0.0,
        });
    }

    let auto = AutoscaleConfig {
        min_groups: 1,
        max_groups: 4,
        interval: Seconds::from_millis(100.0),
        up_queue_depth: 2.0,
        down_queue_depth: 0.25,
        slo_target: 0.9,
        cold_start_steps: 25.0,
    };
    let mut sim = AutoscaleServingSim::new(system, fleet_config(1, ctx.threads), auto)
        .expect("autoscale fleet config is valid");
    let r = sim.run(design, &trace).expect("autoscale serving run");
    rows.push(Row {
        fleet: "autoscale".to_string(),
        completed: r.completed,
        ttft_p99_ms: r.ttft.p99.as_millis(),
        slo_attainment: r.slo_attainment,
        goodput_rps: r.goodput_rps,
        chip_seconds: r.chip_seconds,
        peak_groups: r.peak_groups,
        scale_ups: r.scale_ups,
        scale_downs: r.scale_downs,
        cold_starts: r.cold_starts,
        cold_start_total_ms: r.cold_start_total.as_millis(),
    });

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fleet.clone(),
                r.completed.to_string(),
                format!("{:.1}", r.ttft_p99_ms),
                format!("{:.0}%", r.slo_attainment * 100.0),
                format!("{:.2}", r.goodput_rps),
                format!("{:.2}", r.chip_seconds),
                r.peak_groups.to_string(),
                format!("{}/{}", r.scale_ups, r.scale_downs),
                format!("{} ({:.0} ms)", r.cold_starts, r.cold_start_total_ms),
            ]
        })
        .collect();
    ctx.table(
        &[
            "fleet",
            "done",
            "TTFT-p99",
            "SLO",
            "goodput",
            "chip-s",
            "peak",
            "up/down",
            "cold starts",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected: dp1 drowns in the bursts (queue-driven TTFT tail), dp4 meets the");
    ctx.line("SLO by paying for peak capacity throughout, and the autoscaler lands between:");
    ctx.line("near-dp4 goodput at well under dp4's chip-seconds, the cold starts visible");
    ctx.line("as the spin-up lag each burst front pays.");

    let dp1 = &rows[0];
    let dp4 = &rows[1];
    let auto_row = &rows[2];
    assert!(
        rows.iter().all(|r| r.completed == trace.len()),
        "every fleet must complete the whole trace"
    );
    assert!(
        auto_row.goodput_rps > dp1.goodput_rps,
        "autoscaler goodput {:.2} must beat static dp1 {:.2}",
        auto_row.goodput_rps,
        dp1.goodput_rps
    );
    assert!(
        auto_row.chip_seconds < dp4.chip_seconds,
        "autoscaler chip-seconds {:.2} must undercut static dp4 {:.2}",
        auto_row.chip_seconds,
        dp4.chip_seconds
    );

    for r in &rows {
        ctx.metric(format!("{}.goodput_rps", r.fleet), r.goodput_rps);
        ctx.metric(format!("{}.slo_attainment", r.fleet), r.slo_attainment);
        ctx.metric(format!("{}.chip_seconds", r.fleet), r.chip_seconds);
    }
    ctx.metric("autoscale.scale_ups", auto_row.scale_ups as f64);
    ctx.metric("autoscale.scale_downs", auto_row.scale_downs as f64);
    ctx.metric("autoscale.cold_starts", auto_row.cold_starts as f64);
    ctx.metric(
        "autoscale.cold_start_total_ms",
        auto_row.cold_start_total_ms,
    );
    ctx.metric("autoscale.peak_groups", auto_row.peak_groups as f64);
    ctx.finish(&rows);
}
