//! Fig. 21: interconnect utilization vs pod HBM bandwidth for both
//! topologies (link-level: mesh pays hop multiplicity).

use serde::Serialize;

use crate::ctx::{pct, Ctx};
use crate::experiments::fig19::sweep;

/// NoC utilization across designs for one topology/HBM point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Interconnect topology label.
    pub topology: String,
    /// Model name.
    pub model: String,
    /// Pod HBM bandwidth (TB/s).
    pub hbm_tbps: f64,
    /// NoC utilization per design in `Design::ALL` order.
    pub noc_util: Vec<f64>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 21: interconnect utilization vs pod HBM bandwidth");
    let data = sweep(ctx);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (topo, model, bw, outs) in &data {
        let util: Vec<f64> = outs.iter().map(|o| o.report.noc_util).collect();
        cells.push(vec![
            topo.clone(),
            model.clone(),
            format!("{bw:.0}"),
            pct(util[0]),
            pct(util[1]),
            pct(util[2]),
            pct(util[3]),
            pct(util[4]),
        ]);
        rows.push(Row {
            topology: topo.clone(),
            model: model.clone(),
            hbm_tbps: *bw,
            noc_util: util,
        });
    }
    ctx.table(
        &[
            "topology", "model", "HBM TB/s", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): mesh chips always show higher link utilization than");
    ctx.line("all-to-all at the same HBM bandwidth (multi-hop delivery); ELK-Full utilizes");
    ctx.line("the fabric best.");
    for r in &rows {
        ctx.metric(
            format!(
                "{}.{}.hbm{:.0}.elk_full_noc_util",
                r.topology, r.model, r.hbm_tbps
            ),
            r.noc_util[3],
        );
    }
    ctx.finish(&rows);
}
