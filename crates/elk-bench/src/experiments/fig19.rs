//! Fig. 19: per-token latency vs pod HBM bandwidth, all-to-all and mesh.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::presets;
use elk_sim::SimOptions;
use elk_units::ByteRate;

use crate::ctx::{build_llm, default_workload, llms, Ctx};
use crate::experiments::run_designs;

/// Latency across designs for one topology/HBM point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Interconnect topology label.
    pub topology: String,
    /// Model name.
    pub model: String,
    /// Pod HBM bandwidth (TB/s).
    pub hbm_tbps: f64,
    /// Latency (ms) per design in `Design::ALL` order.
    pub latency_ms: Vec<f64>,
}

/// Shared sweep used by Figs. 19–21.
pub(crate) fn sweep(
    ctx: &mut Ctx,
) -> Vec<(String, String, f64, Vec<elk_baselines::DesignOutcome>)> {
    let bws: &[f64] = if ctx.full {
        &[4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
    } else {
        &[4.0, 8.0, 16.0]
    };
    let models = if ctx.full {
        llms()
    } else {
        vec![elk_model::zoo::llama2_13b(), elk_model::zoo::llama2_70b()]
    };
    let mut out = Vec::new();
    for (topo_name, base) in [
        ("all-to-all", presets::ipu_pod4()),
        ("mesh", presets::ipu_pod4_mesh()),
    ] {
        let base_runner = DesignRunner::new(base).with_threads(ctx.threads);
        for cfg in &models {
            let graph = build_llm(cfg, default_workload());
            let catalog = base_runner.catalog(&graph).expect("catalog");
            for &bw in bws {
                let system = base_runner
                    .system()
                    .with_total_hbm_bandwidth(ByteRate::tib_per_sec(bw));
                let runner = base_runner.with_system(system);
                let outs = run_designs(
                    &runner,
                    &graph,
                    &catalog,
                    &Design::ALL,
                    &SimOptions::default(),
                );
                out.push((topo_name.to_string(), cfg.name.clone(), bw, outs));
            }
        }
    }
    out
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 19: per-token latency (ms) vs pod HBM bandwidth");
    let data = sweep(ctx);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (topo, model, bw, outs) in &data {
        let lat: Vec<f64> = outs.iter().map(|o| o.report.total.as_millis()).collect();
        cells.push(vec![
            topo.clone(),
            model.clone(),
            format!("{bw:.0}"),
            format!("{:.2}", lat[0]),
            format!("{:.2}", lat[1]),
            format!("{:.2}", lat[2]),
            format!("{:.2}", lat[3]),
            format!("{:.2}", lat[4]),
        ]);
        rows.push(Row {
            topology: topo.clone(),
            model: model.clone(),
            hbm_tbps: *bw,
            latency_ms: lat,
        });
    }
    ctx.table(
        &[
            "topology", "model", "HBM TB/s", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper): all designs HBM-bound at low bandwidth; benefits");
    ctx.line("diminish as interconnect/execution bind; mesh trails all-to-all and ELK-Full");
    ctx.line("has a harder time matching Ideal on mesh for the non-GQA (KV-heavy) models.");
    for r in &rows {
        ctx.metric(
            format!(
                "{}.{}.hbm{:.0}.elk_full_ms",
                r.topology, r.model, r.hbm_tbps
            ),
            r.latency_ms[3],
        );
    }
    ctx.finish(&rows);
}
