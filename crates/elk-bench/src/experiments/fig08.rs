//! Fig. 8: total per-core interconnect bandwidth demand (inter-core +
//! controller-to-core) over time. More broadcast at preload time spreads
//! traffic and reduces fluctuation.

use serde::Serialize;

use elk_baselines::{DesignRunner, PreloadMode};
use elk_model::zoo;

use crate::ctx::{default_system, Ctx};
use crate::experiments::fig06::sparkline;
use crate::experiments::fig07::trace_mode;

/// Total fabric-demand time series for one preload-state mode.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Model name.
    pub model: String,
    /// Preload-state mode label.
    pub mode: String,
    /// Total per-core fabric demand per bucket, GB/s.
    pub noc_gbps: Vec<f64>,
    /// Coefficient of variation of the demand (spikiness metric).
    pub cv: f64,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 8: total per-core interconnect demand, MinPreload vs MaxPreload");
    let system = default_system();
    let runner = DesignRunner::new(system.clone()).with_threads(ctx.threads);
    let cores = system.chip.cores as f64;
    let mut all = Vec::new();

    for cfg in [zoo::llama2_13b(), zoo::gemma2_27b(), zoo::opt_30b()] {
        for (mode, label) in [
            (PreloadMode::MinFootprint, "MinPreload"),
            (PreloadMode::MaxBroadcast, "MaxPreload"),
        ] {
            let (model, rep) = trace_mode(&system, &runner, &cfg, mode);
            let trace = rep.trace.expect("trace");
            let series: Vec<f64> = trace.noc_total.iter().map(|r| r / cores / 1e9).collect();
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / series.len() as f64;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            ctx.line(format!(
                "{model} {label:>10}: mean {mean:.2} GB/s/core, CV {cv:.2}, trace: {}",
                sparkline(&series)
            ));
            all.push(Series {
                model,
                mode: label.to_string(),
                noc_gbps: series,
                cv,
            });
        }
    }
    ctx.line("");
    ctx.line("Expected shape (paper): MinPreload fluctuates sharply; MaxPreload spreads");
    ctx.line("traffic across preload and execution, lowering the variation.");
    for s in &all {
        ctx.metric(format!("{}.{}.cv", s.model, s.mode), s.cv);
    }
    ctx.finish(&all);
}
