//! Fig. 17: per-token serving latency of every model × batch × sequence
//! × design on the 4-chip, 16 TB/s-HBM pod — the headline result.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_model::Workload;
use elk_sim::SimOptions;

use crate::ctx::{build_llm, default_system, llms, ms, Ctx};
use crate::experiments::run_designs;

/// Per-token serving latency of one model/seq/batch point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Sequence length.
    pub seq_len: u64,
    /// Batch size.
    pub batch: u64,
    /// Latency (ms) per design, in `Design::ALL` order.
    pub latency_ms: Vec<f64>,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 17: per-token serving latency (ms), 4 chips, 16 TB/s HBM");
    let seqs: &[u64] = if ctx.full { &[2048, 4096] } else { &[2048] };
    let batches = [16u64, 32, 64];
    let runner = DesignRunner::new(default_system()).with_threads(ctx.threads);
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for cfg in llms() {
        for &seq in seqs {
            for &b in &batches {
                let graph = build_llm(&cfg, Workload::decode(b, seq));
                let catalog = runner.catalog(&graph).expect("catalog");
                let outs = run_designs(
                    &runner,
                    &graph,
                    &catalog,
                    &Design::ALL,
                    &SimOptions::default(),
                );
                let lat: Vec<f64> = outs.iter().map(|o| o.report.total.as_millis()).collect();
                let mut row = vec![cfg.name.clone(), format!("s{seq}"), format!("b{b}")];
                row.extend(outs.iter().map(|o| ms(o.report.total)));
                cells.push(row);
                rows.push(Row {
                    model: cfg.name.clone(),
                    seq_len: seq,
                    batch: b,
                    latency_ms: lat,
                });
            }
        }
    }

    ctx.table(
        &[
            "model", "seq", "batch", "Basic", "Static", "ELK-Dyn", "ELK-Full", "Ideal",
        ],
        &cells,
    );

    // Headline aggregates, mirroring §6.2.
    let gm = |f: &dyn Fn(&Row) -> f64| {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let speedup_basic = gm(&|r| r.latency_ms[0] / r.latency_ms[3]);
    let speedup_static = gm(&|r| r.latency_ms[1] / r.latency_ms[3]);
    let of_ideal = gm(&|r| r.latency_ms[4] / r.latency_ms[3]);
    ctx.line("");
    ctx.line(format!(
        "ELK-Full vs Basic: {speedup_basic:.2}x (paper 1.87x) | vs Static: {speedup_static:.2}x (paper 1.37x) | of Ideal: {:.1}% (paper 94.8%)",
        of_ideal * 100.0
    ));
    ctx.metric("speedup_vs_basic_gm", speedup_basic);
    ctx.metric("speedup_vs_static_gm", speedup_static);
    ctx.metric("fraction_of_ideal_gm", of_ideal);
    for r in &rows {
        ctx.metric(
            format!("{}.s{}.b{}.elk_full_ms", r.model, r.seq_len, r.batch),
            r.latency_ms[3],
        );
    }
    ctx.finish(&rows);
}
