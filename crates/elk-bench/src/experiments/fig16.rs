//! Fig. 16: Elk compile time for varied model and batch sizes.

use serde::Serialize;

use std::time::Instant;

use elk_core::{Compiler, CompilerOptions};
use elk_model::Workload;

use crate::ctx::{build_llm, default_system, llms, Ctx};

/// Compile-time measurement for one model/batch point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// Compile wall-clock (s).
    pub compile_seconds: f64,
    /// Candidate preload orders evaluated.
    pub orders_considered: usize,
    /// Edit distance of the chosen order.
    pub chosen_edit_distance: usize,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 16: compile time vs model / batch size");
    let batches: &[u64] = if ctx.full {
        &[2, 4, 8, 16, 32, 64]
    } else {
        &[8, 32]
    };
    let compiler = Compiler::with_options(
        default_system(),
        CompilerOptions {
            threads: ctx.threads,
            ..CompilerOptions::default()
        },
    );
    let mut rows = Vec::new();

    for cfg in llms() {
        for &b in batches {
            let graph = build_llm(&cfg, Workload::decode(b, 2048));
            // Inclusive wall time: plan enumeration + order search +
            // lowering (the paper's Fig. 16 measures the whole pipeline).
            let t0 = Instant::now();
            let plan = compiler.compile(&graph).expect("compile");
            let secs = t0.elapsed().as_secs_f64();
            ctx.line(format!(
                "{:<12} batch {b:>2}: {secs:.2}s total ({:.3}s search, {} orders, edit distance {})",
                cfg.name,
                plan.stats.compile_seconds,
                plan.stats.orders_considered,
                plan.stats.chosen_edit_distance,
            ));
            rows.push(Row {
                model: cfg.name.clone(),
                batch: b,
                compile_seconds: secs,
                orders_considered: plan.stats.orders_considered,
                chosen_edit_distance: plan.stats.chosen_edit_distance,
            });
        }
    }
    ctx.line("");
    ctx.line("Expected shape (paper): minutes-scale at worst on a 32-core host; compile");
    ctx.line("time grows mildly with batch size and model size (sub-linear search space).");
    ctx.line("This reproduction is faster end-to-end because identical layers share one");
    ctx.line("enumerated plan set (catalog deduplication).");
    // Deterministic search-effort metrics only; wall-clock stays out of
    // the consolidated snapshot.
    for r in &rows {
        ctx.metric(
            format!("{}.b{}.orders_considered", r.model, r.batch),
            r.orders_considered as f64,
        );
    }
    ctx.finish(&rows);
}
