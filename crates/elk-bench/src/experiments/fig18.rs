//! Fig. 18: execution breakdown and hardware utilization (batch 32,
//! sequence 2048): (a) latency breakdown, (b) HBM utilization, (c) NoC
//! utilization split into preload vs inter-core, (d) achieved TFLOPS.

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_sim::SimOptions;

use crate::ctx::{build_llm, default_system, default_workload, llms, pct, Ctx};
use crate::experiments::{pod_tflops, run_designs};

/// Time-breakdown and utilization of one model under one design.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Design name.
    pub design: String,
    /// Preload-only time (ms).
    pub preload_ms: f64,
    /// Execute-only time (ms).
    pub execute_ms: f64,
    /// Overlapped preload/execute time (ms).
    pub overlapped_ms: f64,
    /// Interconnect-throttled time (ms).
    pub interconnect_ms: f64,
    /// Mean HBM bandwidth utilization.
    pub hbm_util: f64,
    /// NoC utilization share from preloads.
    pub noc_util_preload: f64,
    /// NoC utilization share from inter-core sharing.
    pub noc_util_intercore: f64,
    /// Achieved pod-level TFLOPS.
    pub pod_tflops: f64,
}

/// Runs the experiment.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Fig. 18: breakdown & utilization (b32 s2048)");
    let system = default_system();
    let runner = DesignRunner::new(system.clone()).with_threads(ctx.threads);
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for cfg in llms() {
        let graph = build_llm(&cfg, default_workload());
        let catalog = runner.catalog(&graph).expect("catalog");
        let outs = run_designs(
            &runner,
            &graph,
            &catalog,
            &Design::ALL,
            &SimOptions::default(),
        );
        for o in &outs {
            let b = o.report.buckets;
            cells.push(vec![
                cfg.name.clone(),
                o.design.to_string(),
                format!("{:.2}", b.preload.as_millis()),
                format!("{:.2}", b.execute.as_millis()),
                format!("{:.2}", b.overlapped.as_millis()),
                format!("{:.2}", b.interconnect.as_millis()),
                pct(o.report.hbm_util),
                pct(o.report.noc_util_preload),
                pct(o.report.noc_util_intercore),
                format!("{:.1}", pod_tflops(o, system.chips)),
            ]);
            rows.push(Row {
                model: cfg.name.clone(),
                design: o.design.to_string(),
                preload_ms: b.preload.as_millis(),
                execute_ms: b.execute.as_millis(),
                overlapped_ms: b.overlapped.as_millis(),
                interconnect_ms: b.interconnect.as_millis(),
                hbm_util: o.report.hbm_util,
                noc_util_preload: o.report.noc_util_preload,
                noc_util_intercore: o.report.noc_util_intercore,
                pod_tflops: pod_tflops(o, system.chips),
            });
        }
    }

    ctx.table(
        &[
            "model", "design", "pre(ms)", "exe(ms)", "ovl(ms)", "noc(ms)", "HBM", "NoC:pre",
            "NoC:core", "TFLOPS",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected shape (paper, b32 s2048): HBM util Basic~35% Static~46% ELK-Dyn~52%");
    ctx.line("ELK-Full~62% Ideal~64%; ELK-Full eliminates nearly all non-overlapped preload;");
    ctx.line("ELK-Full ~81 TFLOPS (bandwidth-bound, far below the 1000 TFLOPS peak).");
    for r in &rows {
        ctx.metric(format!("{}.{}.hbm_util", r.model, r.design), r.hbm_util);
        ctx.metric(format!("{}.{}.pod_tflops", r.model, r.design), r.pod_tflops);
    }
    ctx.finish(&rows);
}
