//! Ablation: SRAM port architecture (paper footnote 2). IPU-style
//! single-ported SRAM blocks the compute pipeline whenever remote cores
//! read it; a dual-ported design overlaps the two. How much does the
//! port design matter once Elk has minimized inter-core traffic?

use serde::Serialize;

use elk_baselines::{Design, DesignRunner};
use elk_hw::SramContention;
use elk_model::{zoo, Workload};
use elk_sim::SimOptions;

use crate::ctx::{build_llm, default_system, Ctx};
use crate::experiments::run_designs;

/// One SRAM-scaling point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Per-core SRAM label.
    pub sram: String,
    /// Design name.
    pub design: String,
    /// Simulated step latency (ms).
    pub latency_ms: f64,
}

/// Runs the ablation.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Ablation: SRAM contention model (blocking vs concurrent ports)");
    let mut cfg = zoo::llama2_13b();
    if !ctx.full {
        cfg.layers = 8;
    }
    let graph = build_llm(&cfg, Workload::decode(32, 2048));

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, contention) in [
        ("blocking (IPU)", SramContention::Blocking),
        ("concurrent", SramContention::Concurrent),
    ] {
        let mut system = default_system();
        system.chip.sram_contention = contention;
        let runner = DesignRunner::new(system).with_threads(ctx.threads);
        let catalog = runner.catalog(&graph).expect("catalog");
        let outs = run_designs(
            &runner,
            &graph,
            &catalog,
            &[Design::Basic, Design::ElkFull, Design::Ideal],
            &SimOptions::default(),
        );
        for o in &outs {
            cells.push(vec![
                label.to_string(),
                o.design.to_string(),
                format!("{:.3}", o.report.total.as_millis()),
            ]);
            rows.push(Row {
                sram: label.to_string(),
                design: o.design.to_string(),
                latency_ms: o.report.total.as_millis(),
            });
        }
    }
    ctx.table(&["SRAM ports", "design", "latency(ms)"], &cells);
    ctx.line("");
    ctx.line("Reading: concurrent ports help the shift-heavy plans most; Elk's preload");
    ctx.line("broadcasting already removes much of the traffic that blocking ports punish,");
    ctx.line("so its advantage shrinks (but survives) on dual-ported designs.");
    ctx.finish(&rows);
}
