//! Disaggregation: prefill/decode pool separation against colocated
//! continuous batching, on two workload mixes. New to this
//! reproduction (no paper analogue).
//!
//! The same four chips serve each trace two ways: **colocated** (four
//! `tp = pp = 1` groups, each interleaving prefill and decode under
//! prefill priority) and **disaggregated** (two prefill groups feeding
//! two decode groups, chunked prefill, KV handoff priced on the ring).
//! The headline claim — asserted, not just reported — is a crossover:
//!
//! * on the **long-prompt-heavy** trace, heavy-tail prompts stall
//!   colocated decode behind mega prefills, blowing the tight TPOT SLO,
//!   so the disaggregated split wins on goodput despite halving prefill
//!   capacity and paying for every KV transfer;
//! * on the **chat-heavy** trace, decode capacity binds — colocated
//!   brings four decode-capable groups to the disaggregated layout's
//!   two — so colocation wins or ties.

use serde::Serialize;

use elk_baselines::Design;
use elk_cluster::{
    ClusterServeConfig, ClusterServingSim, DisaggConfig, DisaggServingSim, ParallelismPlan,
};
use elk_model::{zoo, SeqBuckets, TransformerConfig};
use elk_serve::{BatchConfig, RequestTrace, RouterPolicy, SloConfig};
use elk_trace::{LengthModel, RateShape, TraceGenConfig};
use elk_units::Seconds;

use crate::ctx::{default_system, Ctx};

/// One serving layout's outcome on one trace.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Trace label: `longprompt` or `chat`.
    pub trace: String,
    /// Layout label: `colocated` or `disagg`.
    pub layout: String,
    /// Requests completed (always the full trace — conservation).
    pub completed: usize,
    /// 99th-percentile time-to-first-token (ms).
    pub ttft_p99_ms: f64,
    /// 99th-percentile time-per-output-token (ms).
    pub tpot_p99_ms: f64,
    /// Fraction of requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second.
    pub goodput_rps: f64,
    /// KV-cache volume moved between the pools (MiB; colocated: 0).
    pub kv_moved_mib: f64,
    /// Summed p2p latency of every KV handoff (ms; colocated: 0).
    pub handoff_total_ms: f64,
}

/// The model and batching knobs every layout shares.
fn tiny_model() -> TransformerConfig {
    let mut model = zoo::llama2_13b();
    model.layers = 2;
    model
}

fn batch() -> BatchConfig {
    BatchConfig {
        max_batch: 8,
        max_prefill_tokens: 4096,
        seq_buckets: SeqBuckets::new(256, 4096),
        bucket_batch: true,
    }
}

/// A long-prompt-heavy mix: heavy-tail prompts up to 2048 tokens with
/// interactive outputs and a tight TPOT SLO the mega prefills threaten.
fn longprompt_trace(requests: usize) -> RequestTrace {
    TraceGenConfig {
        seed: 808,
        requests,
        rate: RateShape::BurstTrain {
            base_rps: 40.0,
            burst_rps: 400.0,
            period_s: 1.0,
            burst_s: 0.2,
        },
        prompt_len: LengthModel::HeavyTail {
            lo: 128,
            alpha: 1.2,
            cap: 2048,
        },
        output_len: LengthModel::Uniform { lo: 24, hi: 64 },
        tenants: 3,
    }
    .generate()
    .to_request_trace()
}

/// A chat-heavy mix: short prompts, long outputs, high rate — decode
/// capacity is the binding resource.
fn chat_trace(requests: usize) -> RequestTrace {
    TraceGenConfig {
        seed: 909,
        requests,
        rate: RateShape::BurstTrain {
            base_rps: 300.0,
            burst_rps: 900.0,
            period_s: 0.5,
            burst_s: 0.15,
        },
        prompt_len: LengthModel::Uniform { lo: 64, hi: 256 },
        output_len: LengthModel::Uniform { lo: 32, hi: 96 },
        tenants: 3,
    }
    .generate()
    .to_request_trace()
}

/// Runs one trace through both layouts and returns the two rows.
fn compare(ctx: &Ctx, label: &str, trace: &RequestTrace, slo: SloConfig) -> Vec<Row> {
    let system = default_system();
    let design = Design::ElkFull;
    let policy = RouterPolicy::LeastOutstanding;

    let mut colo = ClusterServingSim::new(
        system.clone(),
        ClusterServeConfig {
            batch: batch(),
            slo,
            threads: ctx.threads,
            ..ClusterServeConfig::new(tiny_model(), ParallelismPlan::new(1, 1, 4))
        },
    )
    .expect("colocated config is valid");
    let c = colo.run(design, policy, trace).expect("colocated run");

    let mut disagg = DisaggServingSim::new(
        system,
        DisaggConfig {
            batch: batch(),
            slo,
            threads: ctx.threads,
            chunk_tokens: 512,
            ..DisaggConfig::new(
                tiny_model(),
                ParallelismPlan::new(1, 1, 2),
                ParallelismPlan::new(1, 1, 2),
            )
        },
    )
    .expect("disagg config is valid");
    let d = disagg.run(design, policy, trace).expect("disagg run");

    vec![
        Row {
            trace: label.to_string(),
            layout: "colocated".to_string(),
            completed: c.completed,
            ttft_p99_ms: c.ttft.p99.as_millis(),
            tpot_p99_ms: c.tpot.p99.as_millis(),
            slo_attainment: c.slo_attainment,
            goodput_rps: c.goodput_rps,
            kv_moved_mib: 0.0,
            handoff_total_ms: 0.0,
        },
        Row {
            trace: label.to_string(),
            layout: "disagg".to_string(),
            completed: d.completed,
            ttft_p99_ms: d.ttft.p99.as_millis(),
            tpot_p99_ms: d.tpot.p99.as_millis(),
            slo_attainment: d.slo_attainment,
            goodput_rps: d.goodput_rps,
            kv_moved_mib: d.kv_moved.get() as f64 / (1024.0 * 1024.0),
            handoff_total_ms: d.handoff_total.as_millis(),
        },
    ]
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the crossover fails: disaggregation must beat colocation
/// on goodput (and TPOT p99) for the long-prompt-heavy trace, and
/// colocation must win or tie on the chat-heavy trace.
pub fn run(ctx: &mut Ctx) {
    ctx.header("Disaggregation: prefill/decode pools vs colocated batching, two mixes");
    let (long_n, chat_n) = if ctx.full { (144, 192) } else { (48, 64) };
    let longprompt = longprompt_trace(long_n);
    let chat = chat_trace(chat_n);
    ctx.line(format!(
        "longprompt: {} requests over {:.3} s; chat: {} requests over {:.3} s",
        longprompt.len(),
        longprompt.duration().as_secs(),
        chat.len(),
        chat.duration().as_secs()
    ));

    let tight_tpot = SloConfig {
        ttft: Seconds::from_millis(1000.0),
        tpot: Seconds::from_millis(0.8),
    };
    let chat_slo = SloConfig {
        ttft: Seconds::from_millis(100.0),
        tpot: Seconds::from_millis(2.0),
    };
    let mut rows = compare(ctx, "longprompt", &longprompt, tight_tpot);
    rows.extend(compare(ctx, "chat", &chat, chat_slo));

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.trace.clone(),
                r.layout.clone(),
                r.completed.to_string(),
                format!("{:.1}", r.ttft_p99_ms),
                format!("{:.2}", r.tpot_p99_ms),
                format!("{:.0}%", r.slo_attainment * 100.0),
                format!("{:.2}", r.goodput_rps),
                format!("{:.1}", r.kv_moved_mib),
            ]
        })
        .collect();
    ctx.table(
        &[
            "trace", "layout", "done", "TTFT-p99", "TPOT-p99", "SLO", "goodput", "KV MiB",
        ],
        &cells,
    );
    ctx.line("");
    ctx.line("Expected crossover: on the long-prompt mix, colocated decode stalls behind");
    ctx.line("mega prefills and misses the tight TPOT SLO, so the pool split wins even");
    ctx.line("after paying for every KV handoff; on the chat mix, decode capacity binds");
    ctx.line("and colocation's four decode-capable groups beat the split's two.");

    let by = |t: &str, l: &str| {
        rows.iter()
            .find(|r| r.trace == t && r.layout == l)
            .expect("row exists")
    };
    assert!(
        rows.iter().all(|r| r.completed > 0),
        "every layout must complete requests"
    );
    let (lc, ld) = (by("longprompt", "colocated"), by("longprompt", "disagg"));
    assert!(
        ld.goodput_rps > lc.goodput_rps,
        "long-prompt-heavy: disagg goodput {:.2} must beat colocated {:.2}",
        ld.goodput_rps,
        lc.goodput_rps
    );
    assert!(
        ld.tpot_p99_ms < lc.tpot_p99_ms,
        "long-prompt-heavy: disagg TPOT p99 {:.2} must beat colocated {:.2}",
        ld.tpot_p99_ms,
        lc.tpot_p99_ms
    );
    let (cc, cd) = (by("chat", "colocated"), by("chat", "disagg"));
    assert!(
        cc.goodput_rps >= cd.goodput_rps,
        "chat-heavy: colocated goodput {:.2} must win or tie disagg {:.2}",
        cc.goodput_rps,
        cd.goodput_rps
    );

    for r in &rows {
        ctx.metric(
            format!("{}.{}.goodput_rps", r.trace, r.layout),
            r.goodput_rps,
        );
        ctx.metric(
            format!("{}.{}.ttft_p99_ms", r.trace, r.layout),
            r.ttft_p99_ms,
        );
        ctx.metric(
            format!("{}.{}.tpot_p99_ms", r.trace, r.layout),
            r.tpot_p99_ms,
        );
        ctx.metric(
            format!("{}.{}.slo_attainment", r.trace, r.layout),
            r.slo_attainment,
        );
    }
    ctx.metric("longprompt.disagg.kv_moved_mib", ld.kv_moved_mib);
    ctx.metric("longprompt.disagg.handoff_total_ms", ld.handoff_total_ms);
    ctx.metric("chat.disagg.kv_moved_mib", cd.kv_moved_mib);
    ctx.finish(&rows);
}
