//! `BENCH.json` consolidation: one machine-readable snapshot of every
//! experiment's headline numbers, written incrementally.
//!
//! The file has two top-level sections:
//!
//! * `experiments` — deterministic (simulated/derived) metrics from
//!   [`Ctx::metric`](crate::Ctx::metric). Re-running the suite on the
//!   same commit reproduces this section byte for byte, at any
//!   `--threads` count, so PR-to-PR diffs show performance drift only.
//! * `perf` — *measured* metrics from [`Ctx::perf`](crate::Ctx::perf)
//!   (events/sec, peak RSS). These are wall-clock-derived, vary run to
//!   run, and are excluded from every byte-identity check.
//!
//! [`update`] merges by experiment id, so the `scale` binary can
//! refresh its own entry without clobbering a `repro_all` snapshot
//! (and vice versa).

use std::fs;
use std::path::{Path, PathBuf};

use serde::Value;

/// Upserts `entries` into the map section named `section` of `root`.
fn upsert(root: &mut Vec<(String, Value)>, section: &str, entries: Vec<(String, Value)>) {
    if entries.is_empty() {
        return;
    }
    let slot = match root.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => v,
        None => {
            root.push((section.to_string(), Value::Map(Vec::new())));
            &mut root.last_mut().expect("just pushed").1
        }
    };
    let Value::Map(existing) = slot else {
        *slot = Value::Map(Vec::new());
        return upsert(root, section, entries);
    };
    for (id, value) in entries {
        if let Some(e) = existing.iter_mut().find(|(k, _)| *k == id) {
            e.1 = value;
        } else {
            existing.push((id, value));
        }
    }
}

/// Merges experiment metric maps into `<dir>/BENCH.json` and returns
/// the file's path. Existing entries for other experiments are kept;
/// entries with the same id are replaced. A missing or unparseable
/// file starts fresh.
///
/// # Panics
///
/// Panics if the directory or file cannot be written.
pub fn update(
    dir: &Path,
    experiments: Vec<(String, Value)>,
    perf: Vec<(String, Value)>,
) -> PathBuf {
    let path = dir.join("BENCH.json");
    let mut root: Vec<(String, Value)> = fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .and_then(|v| match v {
            Value::Map(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    if !root.iter().any(|(k, _)| k == "experiments") {
        root.insert(0, ("experiments".to_string(), Value::Map(Vec::new())));
    }
    upsert(&mut root, "experiments", experiments);
    upsert(&mut root, "perf", perf);
    fs::create_dir_all(dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&Value::Map(root)).expect("metrics serialize");
    fs::write(&path, json + "\n").expect("write BENCH.json");
    path
}

/// One experiment's metric list as a `Value::Map` entry for [`update`].
#[must_use]
pub fn entry(id: &str, metrics: &[(String, f64)]) -> (String, Value) {
    use serde::Serialize;
    (
        id.to_string(),
        Value::Map(
            metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_merges_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("elk-bench-json-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // First writer: two experiments, no perf.
        update(
            &dir,
            vec![
                entry("fig05", &[("speedup".into(), 2.0)]),
                entry("scale", &[("requests".into(), 100.0)]),
            ],
            vec![],
        );
        // Second writer: refreshes `scale` only, adds perf.
        let path = update(
            &dir,
            vec![entry("scale", &[("requests".into(), 200.0)])],
            vec![entry("scale", &[("events_per_sec".into(), 5e6)])],
        );

        let parsed: Value = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        let experiments = parsed.get("experiments").expect("experiments section");
        assert_eq!(
            experiments.get("fig05").and_then(|m| m.get("speedup")),
            Some(&Value::F64(2.0)),
            "unrelated entries survive"
        );
        assert_eq!(
            experiments.get("scale").and_then(|m| m.get("requests")),
            Some(&Value::F64(200.0)),
            "same-id entries are replaced"
        );
        assert!(
            parsed
                .get("perf")
                .and_then(|m| m.get("scale"))
                .and_then(|m| m.get("events_per_sec"))
                .is_some(),
            "perf section lands"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_starts_fresh() {
        let dir = std::env::temp_dir().join(format!("elk-bench-garbage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("BENCH.json"), "not json").unwrap();
        let path = update(&dir, vec![entry("x", &[("m".into(), 1.0)])], vec![]);
        let parsed: Value = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert!(parsed.get("experiments").is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
