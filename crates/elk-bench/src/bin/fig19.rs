//! Reproduces the paper's fig19. See `elk_bench::experiments::fig19`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig19");
    elk_bench::experiments::fig19::run(&mut ctx);
}
