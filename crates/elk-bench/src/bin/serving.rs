//! Request-level serving experiment. See `elk_bench::experiments::serving`.

fn main() {
    let mut ctx = elk_bench::Ctx::new("serving");
    elk_bench::experiments::serving::run(&mut ctx);
}
