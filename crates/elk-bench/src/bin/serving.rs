//! Request-level serving experiment. See `elk_bench::experiments::serving`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("serving");
    elk_bench::experiments::serving::run(&mut ctx);
}
