//! `cluster` binary: the pod-level (tp, pp, dp) auto-parallelism
//! search (see `experiments::cluster`).

fn main() {
    elk_bench::experiments::cluster::run(&mut elk_bench::bin_ctx("cluster"));
}
