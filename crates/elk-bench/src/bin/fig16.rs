//! Reproduces the paper's fig16. See `elk_bench::experiments::fig16`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig16");
    elk_bench::experiments::fig16::run(&mut ctx);
}
