//! Reproduces the paper's fig18. See `elk_bench::experiments::fig18`.

fn main() {
    let mut ctx = elk_bench::Ctx::new("fig18");
    elk_bench::experiments::fig18::run(&mut ctx);
}
