//! Reproduces the paper's fig18. See `elk_bench::experiments::fig18`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig18");
    elk_bench::experiments::fig18::run(&mut ctx);
}
