//! Ablation study beyond the paper's tables. See
//! `elk_bench::experiments::ablation_reorder`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("ablation_reorder");
    elk_bench::experiments::ablation_reorder::run(&mut ctx);
}
