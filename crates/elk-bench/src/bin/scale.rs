//! Standalone scale bench: `ELK_SCALE_REQUESTS` (default one million)
//! requests through a routed dp=4 cluster on the event kernel. Writes
//! `scale.{txt,json}` and merges its deterministic metrics plus the
//! measured `perf` numbers (events/sec, peak RSS) into `BENCH.json`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("scale");
    elk_bench::experiments::scale::run(&mut ctx);
    let path = elk_bench::bench_json::update(
        ctx.results_dir(),
        vec![elk_bench::bench_json::entry("scale", ctx.metrics())],
        vec![elk_bench::bench_json::entry("scale", ctx.perf_metrics())],
    );
    println!("consolidated metrics: {}", path.display());
}
