//! `autoscale` binary: elastic dp fleet vs static provisioning on a
//! bursty trace (see `experiments::autoscale`). Writes
//! `autoscale.{txt,json}` and merges its deterministic headline
//! metrics (SLO goodput and chip-seconds per fleet, scale events,
//! cold-start totals) into `BENCH.json`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("autoscale");
    elk_bench::experiments::autoscale::run(&mut ctx);
    let path = elk_bench::bench_json::update(
        ctx.results_dir(),
        vec![elk_bench::bench_json::entry("autoscale", ctx.metrics())],
        vec![],
    );
    println!("consolidated metrics: {}", path.display());
}
