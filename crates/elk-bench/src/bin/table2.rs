//! Reproduces the paper's table2. See `elk_bench::experiments::table2`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("table2");
    elk_bench::experiments::table2::run(&mut ctx);
}
