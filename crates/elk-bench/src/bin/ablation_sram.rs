//! Ablation study beyond the paper's tables. See
//! `elk_bench::experiments::ablation_sram`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("ablation_sram");
    elk_bench::experiments::ablation_sram::run(&mut ctx);
}
