//! Reproduces the paper's fig06. See `elk_bench::experiments::fig06`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig06");
    elk_bench::experiments::fig06::run(&mut ctx);
}
