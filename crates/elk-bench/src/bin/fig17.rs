//! Reproduces the paper's fig17. See `elk_bench::experiments::fig17`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig17");
    elk_bench::experiments::fig17::run(&mut ctx);
}
