//! Reproduces the paper's fig23. See `elk_bench::experiments::fig23`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig23");
    elk_bench::experiments::fig23::run(&mut ctx);
}
