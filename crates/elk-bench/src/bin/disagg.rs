//! `disagg` binary: disaggregated prefill/decode pools vs colocated
//! continuous batching on long-prompt-heavy and chat-heavy traces (see
//! `experiments::disagg`). Writes `disagg.{txt,json}` and merges its
//! deterministic headline metrics (goodput / TTFT / TPOT per layout
//! per trace, KV volume moved) into `BENCH.json`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("disagg");
    elk_bench::experiments::disagg::run(&mut ctx);
    let path = elk_bench::bench_json::update(
        ctx.results_dir(),
        vec![elk_bench::bench_json::entry("disagg", ctx.metrics())],
        vec![],
    );
    println!("consolidated metrics: {}", path.display());
}
