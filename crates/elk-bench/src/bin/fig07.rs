//! Reproduces the paper's fig07. See `elk_bench::experiments::fig07`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig07");
    elk_bench::experiments::fig07::run(&mut ctx);
}
