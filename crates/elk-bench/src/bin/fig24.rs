//! Reproduces the paper's fig24. See `elk_bench::experiments::fig24`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig24");
    elk_bench::experiments::fig24::run(&mut ctx);
}
