//! Reproduces the paper's fig20. See `elk_bench::experiments::fig20`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig20");
    elk_bench::experiments::fig20::run(&mut ctx);
}
