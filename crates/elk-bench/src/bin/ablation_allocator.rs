//! Ablation study beyond the paper's tables. See
//! `elk_bench::experiments::ablation_allocator`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("ablation_allocator");
    elk_bench::experiments::ablation_allocator::run(&mut ctx);
}
