//! Reproduces the paper's fig22. See `elk_bench::experiments::fig22`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig22");
    elk_bench::experiments::fig22::run(&mut ctx);
}
