//! Reproduces the paper's fig12. See `elk_bench::experiments::fig12`.

fn main() {
    let mut ctx = elk_bench::Ctx::new("fig12");
    elk_bench::experiments::fig12::run(&mut ctx);
}
