//! Reproduces the paper's fig12. See `elk_bench::experiments::fig12`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig12");
    elk_bench::experiments::fig12::run(&mut ctx);
}
