//! Reproduces the paper's fig05. See `elk_bench::experiments::fig05`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig05");
    elk_bench::experiments::fig05::run(&mut ctx);
}
