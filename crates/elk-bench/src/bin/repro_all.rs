//! Runs every table/figure reproduction in sequence, writing
//! `<out>/<id>.{txt,json}` (default `results/`; override with
//! `--out DIR`). Set `ELK_FULL=1` for the complete grids and
//! `--threads N` to bound the worker pool.
//!
//! After the individual experiments, the per-experiment headline
//! metrics (recorded via `Ctx::metric` — simulated quantities only,
//! never wall-clock) are consolidated into `<out>/BENCH.json`, one
//! object per experiment, so successive PRs can diff performance
//! machine-readably.

use std::path::PathBuf;
use std::time::Instant;

use serde::{Serialize, Value};

type Experiment = (&'static str, fn(&mut elk_bench::Ctx));

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("table2", elk_bench::experiments::table2::run),
        ("fig05", elk_bench::experiments::fig05::run),
        ("fig06", elk_bench::experiments::fig06::run),
        ("fig07", elk_bench::experiments::fig07::run),
        ("fig08", elk_bench::experiments::fig08::run),
        ("fig12", elk_bench::experiments::fig12::run),
        ("fig16", elk_bench::experiments::fig16::run),
        ("fig17", elk_bench::experiments::fig17::run),
        ("fig18", elk_bench::experiments::fig18::run),
        ("fig19", elk_bench::experiments::fig19::run),
        ("fig20", elk_bench::experiments::fig20::run),
        ("fig21", elk_bench::experiments::fig21::run),
        ("fig22", elk_bench::experiments::fig22::run),
        ("fig23", elk_bench::experiments::fig23::run),
        ("fig24", elk_bench::experiments::fig24::run),
        ("serving", elk_bench::experiments::serving::run),
        ("cluster", elk_bench::experiments::cluster::run),
    ];
    let t0 = Instant::now();
    let mut consolidated: Vec<(String, Value)> = Vec::new();
    let mut out: Option<PathBuf> = None;
    for (id, run) in experiments {
        let mut ctx = elk_bench::bin_ctx(id);
        let t = Instant::now();
        run(&mut ctx);
        consolidated.push((
            id.to_string(),
            Value::Map(
                ctx.metrics()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        ));
        // Every ctx resolves the same --out/ELK_RESULTS_DIR policy;
        // reuse it so BENCH.json lands next to the per-experiment files.
        out.get_or_insert_with(|| ctx.results_dir().to_path_buf());
        println!("[{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }

    // One consolidated machine-readable snapshot. No wall-clock fields:
    // re-running the suite on the same commit reproduces it byte for
    // byte, so PR-to-PR diffs show performance drift only.
    let out = out.expect("at least one experiment ran");
    std::fs::create_dir_all(&out).expect("create results dir");
    let bench = Value::Map(vec![("experiments".into(), Value::Map(consolidated))]);
    let path = out.join("BENCH.json");
    let json = serde_json::to_string_pretty(&bench).expect("metrics serialize");
    std::fs::write(&path, json + "\n").expect("write BENCH.json");
    println!("consolidated metrics: {}", path.display());
    println!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
