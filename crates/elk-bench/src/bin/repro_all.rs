//! Runs every table/figure reproduction in sequence, writing
//! `<out>/<id>.{txt,json}` (default `results/`; override with
//! `--out DIR`). Set `ELK_FULL=1` for the complete grids and
//! `--threads N` to bound the worker pool.

use std::time::Instant;

type Experiment = (&'static str, fn(&mut elk_bench::Ctx));

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("table2", elk_bench::experiments::table2::run),
        ("fig05", elk_bench::experiments::fig05::run),
        ("fig06", elk_bench::experiments::fig06::run),
        ("fig07", elk_bench::experiments::fig07::run),
        ("fig08", elk_bench::experiments::fig08::run),
        ("fig12", elk_bench::experiments::fig12::run),
        ("fig16", elk_bench::experiments::fig16::run),
        ("fig17", elk_bench::experiments::fig17::run),
        ("fig18", elk_bench::experiments::fig18::run),
        ("fig19", elk_bench::experiments::fig19::run),
        ("fig20", elk_bench::experiments::fig20::run),
        ("fig21", elk_bench::experiments::fig21::run),
        ("fig22", elk_bench::experiments::fig22::run),
        ("fig23", elk_bench::experiments::fig23::run),
        ("fig24", elk_bench::experiments::fig24::run),
        ("serving", elk_bench::experiments::serving::run),
    ];
    let t0 = Instant::now();
    for (id, run) in experiments {
        let mut ctx = elk_bench::bin_ctx(id);
        let t = Instant::now();
        run(&mut ctx);
        println!("[{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }
    println!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
