//! Runs every table/figure reproduction in sequence, writing
//! `<out>/<id>.{txt,json}` (default `results/`; override with
//! `--out DIR`). Set `ELK_FULL=1` for the complete grids and
//! `--threads N` to bound the worker pool.
//!
//! After the individual experiments, the per-experiment headline
//! metrics (recorded via `Ctx::metric` — simulated quantities only,
//! never wall-clock) are consolidated into `<out>/BENCH.json`'s
//! `experiments` section, one object per experiment, so successive PRs
//! can diff performance machine-readably. Measured quantities recorded
//! via `Ctx::perf` (the scale bench's events/sec and peak RSS) land in
//! a separate run-varying `perf` section.
//!
//! The scale bench defaults to one million requests; set
//! `ELK_SCALE_REQUESTS` to shrink it for smoke runs.

use std::path::PathBuf;
use std::time::Instant;

use serde::Value;

use elk_bench::bench_json;

type Experiment = (&'static str, fn(&mut elk_bench::Ctx));

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("table2", elk_bench::experiments::table2::run),
        ("fig05", elk_bench::experiments::fig05::run),
        ("fig06", elk_bench::experiments::fig06::run),
        ("fig07", elk_bench::experiments::fig07::run),
        ("fig08", elk_bench::experiments::fig08::run),
        ("fig12", elk_bench::experiments::fig12::run),
        ("fig16", elk_bench::experiments::fig16::run),
        ("fig17", elk_bench::experiments::fig17::run),
        ("fig18", elk_bench::experiments::fig18::run),
        ("fig19", elk_bench::experiments::fig19::run),
        ("fig20", elk_bench::experiments::fig20::run),
        ("fig21", elk_bench::experiments::fig21::run),
        ("fig22", elk_bench::experiments::fig22::run),
        ("fig23", elk_bench::experiments::fig23::run),
        ("fig24", elk_bench::experiments::fig24::run),
        ("serving", elk_bench::experiments::serving::run),
        ("cluster", elk_bench::experiments::cluster::run),
        ("autoscale", elk_bench::experiments::autoscale::run),
        ("disagg", elk_bench::experiments::disagg::run),
        ("tenancy", elk_bench::experiments::tenancy::run),
        ("scale", elk_bench::experiments::scale::run),
    ];
    let t0 = Instant::now();
    let mut metrics: Vec<(String, Value)> = Vec::new();
    let mut perf: Vec<(String, Value)> = Vec::new();
    let mut out: Option<PathBuf> = None;
    for (id, run) in experiments {
        let mut ctx = elk_bench::bin_ctx(id);
        let t = Instant::now();
        run(&mut ctx);
        metrics.push(bench_json::entry(id, ctx.metrics()));
        if !ctx.perf_metrics().is_empty() {
            perf.push(bench_json::entry(id, ctx.perf_metrics()));
        }
        // Every ctx resolves the same --out/ELK_RESULTS_DIR policy;
        // reuse it so BENCH.json lands next to the per-experiment files.
        out.get_or_insert_with(|| ctx.results_dir().to_path_buf());
        println!("[{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }

    // One consolidated machine-readable snapshot. The `experiments`
    // section holds no wall-clock fields: re-running the suite on the
    // same commit reproduces it byte for byte, so PR-to-PR diffs show
    // performance drift only. Wall-clock-derived numbers live under
    // `perf`, which is documented as run-varying.
    let out = out.expect("at least one experiment ran");
    let path = bench_json::update(&out, metrics, perf);
    println!("consolidated metrics: {}", path.display());
    println!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
