//! `tenancy` binary: admission control vs an open front door on a
//! burst-overloaded multi-tenant trace (see `experiments::tenancy`).
//! Writes `tenancy.{txt,json}` and merges its deterministic headline
//! metrics (admission split, premium goodput, Jain fairness per
//! policy) into `BENCH.json`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("tenancy");
    elk_bench::experiments::tenancy::run(&mut ctx);
    let path = elk_bench::bench_json::update(
        ctx.results_dir(),
        vec![elk_bench::bench_json::entry("tenancy", ctx.metrics())],
        vec![],
    );
    println!("consolidated metrics: {}", path.display());
}
