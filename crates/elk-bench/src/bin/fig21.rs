//! Reproduces the paper's fig21. See `elk_bench::experiments::fig21`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig21");
    elk_bench::experiments::fig21::run(&mut ctx);
}
