//! Reproduces the paper's fig08. See `elk_bench::experiments::fig08`.

fn main() {
    let mut ctx = elk_bench::bin_ctx("fig08");
    elk_bench::experiments::fig08::run(&mut ctx);
}
