//! Reproduction harness for the paper's evaluation (§6).
//!
//! Every table and figure has a module under [`experiments`] exposing a
//! `run(&Ctx)` function, a thin binary wrapper in `src/bin/`, and an entry
//! in the `repro_all` driver. Experiments print the same rows/series the
//! paper reports and write machine-readable JSON under `results/`.
//!
//! Run one experiment:
//!
//! ```text
//! cargo run --release -p elk-bench --bin fig17
//! ```
//!
//! Run everything (writes `results/*.{txt,json}`):
//!
//! ```text
//! cargo run --release -p elk-bench --bin repro_all
//! ```
//!
//! Set `ELK_FULL=1` for the complete parameter grids (several times
//! slower); the default "quick" grids cover every series with fewer
//! points.
//!
//! Programmatic use — every experiment is a library function over a
//! [`Ctx`]:
//!
//! ```
//! let mut ctx = elk_bench::Ctx::new("doctest");
//! ctx.table(
//!     &["design", "ms"],
//!     &[vec!["ELK-Full".into(), "4.87".into()]],
//! );
//! ```

#![warn(missing_docs)]

pub mod bench_json;
pub mod ctx;
pub mod experiments;

pub use ctx::{bin_ctx, parse_out, Ctx};
