//! Deterministic, sim-time observability for the Elk workspace.
//!
//! Every quantity recorded here is derived from *simulated* time
//! ([`Seconds`] on the device/serving timeline) or from deterministic
//! counters — never from the wall clock — so recorded output obeys the
//! same contract as every Elk report: byte-identical at any thread
//! count. The pieces:
//!
//! - [`TraceEvent`]: a span, instant, or gauge sample on a named track;
//! - [`Histogram`]: fixed-bucket latency histogram whose merge is
//!   associative and commutative (no floating-point sum is kept, only
//!   bucket counts and min/max, so merge order cannot change a bit);
//! - [`ObsBuf`]: a plain buffer of events + counters + histograms that
//!   worker threads fill locally and the parent absorbs in elk-par
//!   index order;
//! - [`Recorder`]: the object-safe sink trait, with [`NullRecorder`]
//!   (all methods no-ops, `enabled() == false`) and [`MemRecorder`]
//!   (a mutex-guarded [`ObsBuf`]);
//! - [`Obs`]: the cheap cloneable handle the engines carry, bundling a
//!   recorder with a per-run sampling cap for high-volume tracks;
//! - [`export`]: Chrome-trace-format JSON (open in Perfetto or
//!   `chrome://tracing`) and a flat metrics JSON.
//!
//! ```
//! use elk_obs::{MemRecorder, Obs};
//! use elk_units::Seconds;
//! use std::sync::Arc;
//!
//! let rec = Arc::new(MemRecorder::new());
//! let obs = Obs::new(rec.clone(), 64);
//! obs.span("kernel", "dispatch", Seconds::ZERO, Seconds::from_micros(3.0), &[]);
//! obs.counter("events", 1);
//! let buf = rec.take_buf();
//! assert_eq!(buf.events.len(), 1);
//! assert_eq!(buf.counters["events"], 1);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use elk_units::Seconds;

pub mod export;

/// Upper bounds (seconds) of the fixed histogram buckets: a
/// powers-of-ten ladder from 1 µs to 100 s. A final open bucket
/// catches everything above the last bound.
pub const BUCKET_BOUNDS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2];

/// One recorded observation on a named track.
///
/// Times are simulated [`Seconds`]; arguments are pre-rendered
/// `(key, value)` strings so the event is `PartialEq`-comparable and
/// serialization never has to guess a type.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A duration on a track: `[start, start + dur]`.
    Span {
        /// Track (Chrome-trace thread) the span lives on.
        track: String,
        /// Span label.
        name: String,
        /// Start timestamp on the simulated timeline.
        start: Seconds,
        /// Duration of the span.
        dur: Seconds,
        /// Extra `(key, value)` annotations.
        args: Vec<(String, String)>,
    },
    /// A zero-duration marker.
    Instant {
        /// Track the marker lives on.
        track: String,
        /// Marker label.
        name: String,
        /// Timestamp on the simulated timeline.
        time: Seconds,
        /// Extra `(key, value)` annotations.
        args: Vec<(String, String)>,
    },
    /// One sample of a numeric series (rendered as a counter track).
    Gauge {
        /// Track the series lives on.
        track: String,
        /// Series label.
        name: String,
        /// Timestamp on the simulated timeline.
        time: Seconds,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The track this event belongs to.
    #[must_use]
    pub fn track(&self) -> &str {
        match self {
            TraceEvent::Span { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Gauge { track, .. } => track,
        }
    }
}

/// Fixed-bucket histogram over [`BUCKET_BOUNDS`].
///
/// Only bucket counts, a total count, and min/max are kept — no
/// floating-point sum — so [`Histogram::merge`] is exactly associative
/// and commutative (integer addition and f64 min/max), and merging
/// per-thread histograms in any order produces identical bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation (NaN observations are dropped).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Associative and
    /// commutative: only integer adds and f64 min/max.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation, `0.0` when empty (keeps exports finite).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, `0.0` when empty (keeps exports finite).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Per-bucket counts; the last entry is the open overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// A buffer of recorded observations: the unit of deterministic merge.
///
/// Worker threads fill a local `ObsBuf` and the parent absorbs them in
/// elk-par index order, so the merged event stream is independent of
/// scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsBuf {
    /// Recorded events, in record order.
    pub events: Vec<TraceEvent>,
    /// Named monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Named latency histograms.
    pub hists: BTreeMap<String, Histogram>,
}

impl ObsBuf {
    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    /// Appends another buffer: events concatenate in call order,
    /// counters add, histograms merge.
    pub fn absorb(&mut self, other: ObsBuf) {
        self.events.extend(other.events);
        for (name, delta) in other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, hist) in other.hists {
            self.hists.entry(name).or_default().merge(&hist);
        }
    }
}

/// An observation sink. Object-safe; every method defaults to a no-op
/// so a disabled recorder costs one virtual call at most (and the
/// [`Obs`] handle skips even that when `enabled()` is false).
pub trait Recorder: Send + Sync + fmt::Debug {
    /// `false` means callers may skip building events entirely.
    fn enabled(&self) -> bool {
        false
    }
    /// Stores one event.
    fn record(&self, _event: TraceEvent) {}
    /// Adds `delta` to a named counter.
    fn counter(&self, _name: &str, _delta: u64) {}
    /// Records one histogram observation.
    fn histogram(&self, _name: &str, _value: f64) {}
    /// Folds a locally-built buffer in (call in deterministic order).
    fn absorb(&self, _buf: ObsBuf) {}
}

/// The disabled recorder: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// An in-memory recorder: a mutex-guarded [`ObsBuf`].
///
/// The mutex serializes access but never ordering-dependent state:
/// parallel engines record into *local* buffers and [`Recorder::absorb`]
/// them in index order, so the lock is only contended on counters.
#[derive(Debug, Default)]
pub struct MemRecorder {
    buf: Mutex<ObsBuf>,
}

impl MemRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        MemRecorder::default()
    }

    /// Takes the accumulated buffer, leaving the recorder empty.
    #[must_use]
    pub fn take_buf(&self) -> ObsBuf {
        std::mem::take(&mut *self.buf.lock().expect("obs buffer poisoned"))
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.buf
            .lock()
            .expect("obs buffer poisoned")
            .events
            .push(event);
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut buf = self.buf.lock().expect("obs buffer poisoned");
        *buf.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn histogram(&self, name: &str, value: f64) {
        let mut buf = self.buf.lock().expect("obs buffer poisoned");
        buf.hists
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    fn absorb(&self, other: ObsBuf) {
        self.buf.lock().expect("obs buffer poisoned").absorb(other);
    }
}

/// The handle engines carry: a shared recorder plus the sampling cap
/// for high-volume tracks (per-request lanes, kernel dispatch spans).
///
/// Cloning is cheap (`Arc` bump). The default handle is the null
/// recorder, so instrumented code paths cost one boolean check when
/// observability is off.
#[derive(Debug, Clone)]
pub struct Obs {
    rec: Arc<dyn Recorder>,
    sample: u64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

impl Obs {
    /// The disabled handle.
    #[must_use]
    pub fn null() -> Self {
        Obs {
            rec: Arc::new(NullRecorder),
            sample: 0,
        }
    }

    /// Wraps a recorder with a sampling cap (`sample` = how many
    /// indexed items — requests, dispatches — get full event lanes).
    #[must_use]
    pub fn new(rec: Arc<dyn Recorder>, sample: u64) -> Self {
        Obs { rec, sample }
    }

    /// `true` when the underlying recorder keeps events.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rec.enabled()
    }

    /// The sampling cap.
    #[must_use]
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Whether the item at `idx` falls under the sampling cap.
    /// Index-based (not random) so sampling is deterministic.
    #[must_use]
    pub fn sampled(&self, idx: usize) -> bool {
        self.enabled() && (idx as u64) < self.sample
    }

    /// Records a span.
    pub fn span(
        &self,
        track: &str,
        name: &str,
        start: Seconds,
        dur: Seconds,
        args: &[(&str, String)],
    ) {
        if self.enabled() {
            self.rec.record(TraceEvent::Span {
                track: track.to_string(),
                name: name.to_string(),
                start,
                dur,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Records an instant marker.
    pub fn instant(&self, track: &str, name: &str, time: Seconds, args: &[(&str, String)]) {
        if self.enabled() {
            self.rec.record(TraceEvent::Instant {
                track: track.to_string(),
                name: name.to_string(),
                time,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Records one sample of a numeric series.
    pub fn gauge(&self, track: &str, name: &str, time: Seconds, value: f64) {
        if self.enabled() {
            self.rec.record(TraceEvent::Gauge {
                track: track.to_string(),
                name: name.to_string(),
                time,
                value,
            });
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if self.enabled() {
            self.rec.counter(name, delta);
        }
    }

    /// Records a latency observation into a named histogram.
    pub fn histogram(&self, name: &str, value: Seconds) {
        if self.enabled() {
            self.rec.histogram(name, value.as_secs());
        }
    }

    /// Folds a locally-built buffer into the shared recorder. Call in
    /// deterministic (elk-par index) order.
    pub fn absorb(&self, buf: ObsBuf) {
        if self.enabled() && !buf.is_empty() {
            self.rec.absorb(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_ladder() {
        let mut h = Histogram::new();
        h.observe(5e-7); // under the first bound
        h.observe(1e-6); // exactly on a bound -> that bucket
        h.observe(3e-3);
        h.observe(1e9); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[4], 1, "3e-3 lands in the <=1e-2 bucket");
        assert_eq!(h.buckets()[BUCKET_BOUNDS.len()], 1);
        assert_eq!(h.min(), 5e-7);
        assert_eq!(h.max(), 1e9);
    }

    #[test]
    fn empty_histogram_exports_finite_min_max() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_merge_matches_pooled_observation() {
        let values = [1e-5, 2e-4, 0.3, 7.0, 1e-6, 250.0];
        let mut pooled = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            pooled.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, pooled);
        assert_eq!(ba, pooled, "merge must be commutative");
    }

    #[test]
    fn null_recorder_drops_everything() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        assert!(!obs.sampled(0));
        obs.span("t", "s", Seconds::ZERO, Seconds::ZERO, &[]);
        obs.counter("c", 1);
        // Nothing to assert beyond "does not panic": NullRecorder has no state.
    }

    #[test]
    fn mem_recorder_accumulates_and_takes() {
        let rec = Arc::new(MemRecorder::new());
        let obs = Obs::new(rec.clone(), 2);
        assert!(obs.sampled(1));
        assert!(!obs.sampled(2));
        obs.span(
            "kernel",
            "dispatch",
            Seconds::ZERO,
            Seconds::from_micros(2.0),
            &[("prio", "0".into())],
        );
        obs.instant("req/0", "rejected", Seconds::from_millis(1.0), &[]);
        obs.gauge("kernel", "queue_len", Seconds::ZERO, 3.0);
        obs.counter("events", 2);
        obs.counter("events", 1);
        obs.histogram("ttft", Seconds::from_millis(40.0));
        let buf = rec.take_buf();
        assert_eq!(buf.events.len(), 3);
        assert_eq!(buf.counters["events"], 3);
        assert_eq!(buf.hists["ttft"].count(), 1);
        assert!(rec.take_buf().is_empty(), "take leaves the recorder empty");
    }

    #[test]
    fn absorb_concatenates_and_merges() {
        let rec = Arc::new(MemRecorder::new());
        let obs = Obs::new(rec.clone(), 0);
        let mut a = ObsBuf::default();
        a.events.push(TraceEvent::Instant {
            track: "x".into(),
            name: "first".into(),
            time: Seconds::ZERO,
            args: vec![],
        });
        a.counters.insert("n".into(), 2);
        let mut b = ObsBuf::default();
        b.events.push(TraceEvent::Instant {
            track: "x".into(),
            name: "second".into(),
            time: Seconds::ZERO,
            args: vec![],
        });
        b.counters.insert("n".into(), 3);
        obs.absorb(a);
        obs.absorb(b);
        let buf = rec.take_buf();
        assert_eq!(buf.events.len(), 2);
        assert!(matches!(&buf.events[0], TraceEvent::Instant { name, .. } if name == "first"));
        assert_eq!(buf.counters["n"], 5);
    }
}
