//! Exporters: Chrome-trace-format JSON and a flat metrics JSON.
//!
//! Both walk an [`ObsBuf`] in deterministic order — events in record
//! order, counters and histograms in `BTreeMap` (sorted) order — so
//! the rendered bytes depend only on what was recorded, never on
//! thread scheduling. No timestamps other than simulated time appear
//! anywhere in the output.

use serde::Value;

use crate::{ObsBuf, TraceEvent, BUCKET_BOUNDS};

/// Chrome-trace pid under which every Elk track is filed.
const PID: u64 = 1;

fn args_value(args: &[(String, String)]) -> Value {
    Value::Map(
        args.iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    )
}

/// Renders the buffer in Chrome trace event format:
/// `{"traceEvents": [...]}` with `"M"` metadata naming the process and
/// one thread per track (tids assigned in track first-appearance
/// order), `"X"` complete spans, `"i"` instants, and `"C"` counter
/// samples. Timestamps and durations are simulated microseconds.
/// Loadable in Perfetto or `chrome://tracing`.
#[must_use]
pub fn chrome_trace(buf: &ObsBuf) -> Value {
    // Track -> tid, in first-appearance order so numbering is a pure
    // function of the (deterministic) event stream.
    let mut tracks: Vec<&str> = Vec::new();
    for ev in &buf.events {
        if !tracks.contains(&ev.track()) {
            tracks.push(ev.track());
        }
    }
    let tid_of = |track: &str| -> u64 {
        tracks
            .iter()
            .position(|t| *t == track)
            .expect("known track") as u64
            + 1
    };

    let mut events = Vec::with_capacity(buf.events.len() + tracks.len() + 1);
    events.push(Value::Map(vec![
        ("name".into(), Value::Str("process_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::U64(PID)),
        (
            "args".into(),
            Value::Map(vec![("name".into(), Value::Str("elk".into()))]),
        ),
    ]));
    for track in &tracks {
        events.push(Value::Map(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::U64(PID)),
            ("tid".into(), Value::U64(tid_of(track))),
            (
                "args".into(),
                Value::Map(vec![("name".into(), Value::Str((*track).into()))]),
            ),
        ]));
    }

    for ev in &buf.events {
        let tid = tid_of(ev.track());
        let entry = match ev {
            TraceEvent::Span {
                name,
                start,
                dur,
                args,
                ..
            } => {
                let mut m = vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("ph".into(), Value::Str("X".into())),
                    ("pid".into(), Value::U64(PID)),
                    ("tid".into(), Value::U64(tid)),
                    ("ts".into(), Value::F64(start.as_micros())),
                    ("dur".into(), Value::F64(dur.as_micros())),
                ];
                if !args.is_empty() {
                    m.push(("args".into(), args_value(args)));
                }
                Value::Map(m)
            }
            TraceEvent::Instant {
                name, time, args, ..
            } => {
                let mut m = vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("ph".into(), Value::Str("i".into())),
                    ("pid".into(), Value::U64(PID)),
                    ("tid".into(), Value::U64(tid)),
                    ("ts".into(), Value::F64(time.as_micros())),
                    ("s".into(), Value::Str("t".into())),
                ];
                if !args.is_empty() {
                    m.push(("args".into(), args_value(args)));
                }
                Value::Map(m)
            }
            TraceEvent::Gauge {
                name, time, value, ..
            } => Value::Map(vec![
                ("name".into(), Value::Str(name.clone())),
                ("ph".into(), Value::Str("C".into())),
                ("pid".into(), Value::U64(PID)),
                ("tid".into(), Value::U64(tid)),
                ("ts".into(), Value::F64(time.as_micros())),
                (
                    "args".into(),
                    Value::Map(vec![(name.clone(), Value::F64(*value))]),
                ),
            ]),
        };
        events.push(entry);
    }

    Value::Map(vec![("traceEvents".into(), Value::Seq(events))])
}

/// Renders counters and histograms as flat metrics JSON:
/// `{"counters": {...}, "histograms": {name: {count, min, max,
/// buckets: [{le, count}, ...]}}}`, keys sorted.
#[must_use]
pub fn metrics(buf: &ObsBuf) -> Value {
    let counters = Value::Map(
        buf.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    );
    let hists = Value::Map(
        buf.hists
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets()
                    .iter()
                    .enumerate()
                    .map(|(i, &count)| {
                        let le = match BUCKET_BOUNDS.get(i) {
                            Some(&b) => Value::F64(b),
                            None => Value::Str("+inf".into()),
                        };
                        Value::Map(vec![("le".into(), le), ("count".into(), Value::U64(count))])
                    })
                    .collect();
                let body = Value::Map(vec![
                    ("count".into(), Value::U64(h.count())),
                    ("min".into(), Value::F64(h.min())),
                    ("max".into(), Value::F64(h.max())),
                    ("buckets".into(), Value::Seq(buckets)),
                ]);
                (k.clone(), body)
            })
            .collect(),
    );
    Value::Map(vec![
        ("counters".into(), counters),
        ("histograms".into(), hists),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, TraceEvent};
    use elk_units::Seconds;

    fn sample_buf() -> ObsBuf {
        let mut buf = ObsBuf::default();
        buf.events.push(TraceEvent::Span {
            track: "kernel".into(),
            name: "dispatch".into(),
            start: Seconds::ZERO,
            dur: Seconds::from_micros(5.0),
            args: vec![("prio".into(), "0".into())],
        });
        buf.events.push(TraceEvent::Gauge {
            track: "kernel".into(),
            name: "queue_len".into(),
            time: Seconds::from_micros(5.0),
            value: 2.0,
        });
        buf.events.push(TraceEvent::Instant {
            track: "req/0".into(),
            name: "rejected".into(),
            time: Seconds::from_millis(1.0),
            args: vec![],
        });
        buf.counters.insert("kernel.events".into(), 7);
        let mut h = Histogram::new();
        h.observe(0.04);
        buf.hists.insert("ttft".into(), h);
        buf
    }

    #[test]
    fn chrome_trace_has_metadata_then_events() {
        let v = chrome_trace(&sample_buf());
        let Some(Value::Seq(events)) = v.get("traceEvents") else {
            panic!("traceEvents must be a sequence");
        };
        // 1 process + 2 tracks + 3 events.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].get("ph"), Some(&Value::Str("M".into())));
        assert_eq!(events[1].get("tid"), Some(&Value::U64(1)));
        assert_eq!(events[2].get("tid"), Some(&Value::U64(2)));
        let span = &events[3];
        assert_eq!(span.get("ph"), Some(&Value::Str("X".into())));
        assert_eq!(span.get("dur"), Some(&Value::F64(5.0)));
        assert_eq!(events[4].get("ph"), Some(&Value::Str("C".into())));
        assert_eq!(events[5].get("ph"), Some(&Value::Str("i".into())));
        assert_eq!(events[5].get("tid"), Some(&Value::U64(2)));
    }

    #[test]
    fn metrics_exports_sorted_counters_and_bucket_ladder() {
        let v = metrics(&sample_buf());
        let counters = v.get("counters").expect("counters");
        assert_eq!(counters.get("kernel.events"), Some(&Value::U64(7)));
        let h = v
            .get("histograms")
            .and_then(|m| m.get("ttft"))
            .expect("ttft");
        assert_eq!(h.get("count"), Some(&Value::U64(1)));
        let Some(Value::Seq(buckets)) = h.get("buckets") else {
            panic!("buckets must be a sequence");
        };
        assert_eq!(buckets.len(), BUCKET_BOUNDS.len() + 1);
        assert_eq!(
            buckets.last().unwrap().get("le"),
            Some(&Value::Str("+inf".into()))
        );
    }

    #[test]
    fn exports_are_deterministic_bytes() {
        let a = serde_json::to_string(&chrome_trace(&sample_buf())).unwrap();
        let b = serde_json::to_string(&chrome_trace(&sample_buf())).unwrap();
        assert_eq!(a, b);
        let forbidden = ["wall", "elapsed", "timestamp", "time_ms", "unix_"];
        for f in forbidden {
            assert!(!a.contains(f), "export must not contain wall-clock key {f}");
        }
    }
}
