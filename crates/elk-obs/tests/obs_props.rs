//! Property tests for the determinism contracts elk-obs sells:
//! histogram merge is a true commutative monoid (so per-thread merge
//! order cannot leak into exported bytes), and a fan-out recorded
//! through per-worker buffers absorbed in index order serializes to
//! identical bytes at any `elk-par` thread count.

use std::sync::Arc;

use elk_obs::export::{chrome_trace, metrics};
use elk_obs::{Histogram, MemRecorder, Obs, ObsBuf, Recorder};
use elk_units::Seconds;
use proptest::prelude::*;

fn hist(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Observations spanning every bucket of [`elk_obs::BUCKET_BOUNDS`],
/// including the overflow bucket past the last bound.
fn arb_observations() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-7f64..1e3, 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn histogram_merge_is_commutative(
        a in arb_observations(),
        b in arb_observations(),
    ) {
        let (a, b) = (hist(&a), hist(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in arb_observations(),
        b in arb_observations(),
        c in arb_observations(),
    ) {
        let (a, b, c) = (hist(&a), hist(&b), hist(&c));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn histogram_merge_matches_observing_everything_at_once(
        a in arb_observations(),
        b in arb_observations(),
    ) {
        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged(&hist(&a), &hist(&b)), hist(&all));
    }

    // The fan-out idiom every parallel engine uses (worker-local
    // buffers, absorbed in elk-par index order) must serialize to the
    // same bytes at 1 and 8 threads, for any workload shape.
    #[test]
    fn fan_out_recording_is_byte_identical_across_thread_counts(
        lanes in prop::collection::vec((0u64..1000, 1u64..=50, 0u64..16), 1..12),
    ) {
        let run = |threads: usize| {
            let rec = Arc::new(MemRecorder::new());
            let obs = Obs::new(rec.clone(), 64);
            let bufs = elk_par::par_map(threads, &lanes, |_, &(start, width, hits)| {
                let local = Arc::new(MemRecorder::new());
                let o = Obs::new(local.clone(), 64);
                let track = format!("lane/{start}");
                let t0 = Seconds::from_micros(start as f64);
                let dur = Seconds::from_micros(width as f64);
                o.span(&track, "work", t0, dur, &[("hits", hits.to_string())]);
                o.instant(&track, "done", t0 + dur, &[]);
                o.gauge(&track, "depth", t0, hits as f64);
                o.counter("lanes.done", 1);
                o.counter("lanes.hits", hits);
                o.histogram("lanes.width", dur);
                local.take_buf()
            });
            // Deterministic merge: index order, never completion order.
            for buf in bufs {
                obs.absorb(buf);
            }
            let buf = rec.take_buf();
            let timeline = serde_json::to_string(&chrome_trace(&buf)).expect("serialize");
            let flat = serde_json::to_string(&metrics(&buf)).expect("serialize");
            (timeline, flat)
        };
        let t1 = run(1);
        let t8 = run(8);
        prop_assert_eq!(t1, t8);
    }
}

/// Absorbing buffers in index order is also exactly what `ObsBuf::absorb`
/// promises at the type level: counters add, histograms merge.
#[test]
fn absorb_merges_counters_and_histograms() {
    let mk = |n: u64| {
        let rec = MemRecorder::new();
        rec.counter("c", n);
        rec.histogram("h", n as f64 * 1e-3);
        rec.take_buf()
    };
    let mut all = ObsBuf::default();
    all.absorb(mk(2));
    all.absorb(mk(3));
    assert_eq!(all.counters["c"], 5);
    assert_eq!(all.hists["h"].count(), 2);
}
