//! Property tests for the kernel's ordering and statistics contracts.

use elk_sim_core::{EventQueue, TimeWeighted};
use elk_units::Seconds;
use proptest::collection::vec;
use proptest::prelude::*;

/// Schedules `events` in the given order and returns the pop sequence
/// of payload ids.
fn pop_order(events: &[(Seconds, u8, usize)]) -> Vec<usize> {
    let mut q = EventQueue::new();
    for &(time, priority, id) in events {
        q.schedule(time, priority, id);
    }
    std::iter::from_fn(|| q.pop().map(|s| s.event)).collect()
}

/// A deterministic in-place shuffle driven by `salt` (the shim's
/// strategies have no `Just`/`Shuffle`, so permute by hand).
fn permute<T>(items: &mut [T], salt: u64) {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

proptest! {
    // Tie-breaking is permutation-invariant: as long as `(time,
    // priority)` keys are unique, insertion order cannot change the
    // pop order.
    #[test]
    fn unique_keys_pop_identically_under_any_insertion_order(
        raw in vec((0u32..50, 0u8..3), 1..40),
        salt in 0u64..u64::MAX,
    ) {
        // Dedup (time, priority) pairs so FIFO seq never has to decide.
        let mut keys = raw;
        keys.sort_unstable();
        keys.dedup();
        let mut events: Vec<(Seconds, u8, usize)> = keys
            .iter()
            .enumerate()
            .map(|(id, &(t, p))| (Seconds::new(f64::from(t) * 0.125), p, id))
            .collect();
        let baseline = pop_order(&events);
        permute(&mut events, salt);
        prop_assert_eq!(pop_order(&events), baseline);
    }

    // Among fully equal `(time, priority)` keys, pops are FIFO in
    // schedule order.
    #[test]
    fn equal_keys_pop_fifo(n in 1usize..60, t in 0.0f64..10.0) {
        let events: Vec<(Seconds, u8, usize)> =
            (0..n).map(|id| (Seconds::new(t), 1, id)).collect();
        let order = pop_order(&events);
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    // The clock observed across pops never goes backwards, whatever
    // the insertion order.
    #[test]
    fn popped_times_are_monotone(
        raw in vec((0u32..1000, 0u8..4), 1..60),
    ) {
        let mut q = EventQueue::new();
        for (id, &(t, p)) in raw.iter().enumerate() {
            q.schedule(Seconds::new(f64::from(t) * 0.01), p, id);
        }
        let mut last = Seconds::ZERO;
        while let Some(fired) = q.pop() {
            prop_assert!(fired.key.time >= last);
            prop_assert_eq!(q.now(), fired.key.time);
            last = fired.key.time;
        }
        prop_assert_eq!(q.events_processed(), raw.len() as u64);
    }

    // The time-weighted area equals the hand-computed sum of
    // `value × hold-duration` over the step function.
    #[test]
    fn time_weighted_area_matches_direct_integration(
        steps in vec((0u32..100, 0u32..20), 1..30),
    ) {
        let mut times: Vec<f64> = steps.iter().map(|&(t, _)| f64::from(t) * 0.05).collect();
        times.sort_by(f64::total_cmp);
        let values: Vec<f64> = steps.iter().map(|&(_, v)| f64::from(v)).collect();

        let mut tw = TimeWeighted::new();
        let mut expected = 0.0;
        let mut prev_t = 0.0;
        let mut prev_v = 0.0;
        for (&t, &v) in times.iter().zip(&values) {
            tw.record(Seconds::new(t), v);
            expected += prev_v * (t - prev_t);
            prev_t = t;
            prev_v = v;
        }
        let end = times.last().copied().unwrap_or(0.0) + 1.0;
        expected += prev_v * (end - prev_t);
        prop_assert!((tw.area_until(Seconds::new(end)) - expected).abs() < 1e-9);
    }
}
