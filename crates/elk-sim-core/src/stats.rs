//! Time-weighted statistics over piecewise-constant signals.
//!
//! A sampled mean (`sum of samples / number of samples`) weights a 5 ms
//! decode step exactly like a 900 ms long-context prefill stall; the
//! accumulators here weight every value by **how long it was held**
//! instead, which is the quantity a queue-depth or utilization report
//! actually means.

use elk_units::Seconds;

/// Integrates a piecewise-constant `f64` signal over simulation time.
///
/// The signal starts at value `0` at `t = 0`; each
/// [`record`](TimeWeighted::record) call sets a new value from that
/// instant onward. The time-weighted mean over `[0, end]` is
/// `∫ value dt / end`.
///
/// # Examples
///
/// ```
/// use elk_sim_core::TimeWeighted;
/// use elk_units::Seconds;
///
/// // Depth 1 held for 0.9 s, then 0 for 0.1 s: the sample mean of the
/// // two recorded values is 0.5, but the *time* mean is 0.9.
/// let mut tw = TimeWeighted::new();
/// tw.record(Seconds::ZERO, 1.0);
/// tw.record(Seconds::new(0.9), 0.0);
/// assert!((tw.mean_until(Seconds::new(1.0)) - 0.9).abs() < 1e-12);
/// assert_eq!(tw.peak(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: Seconds,
    last_value: f64,
    area: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted::new()
    }
}

impl TimeWeighted {
    /// Value `0` from `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        TimeWeighted {
            last_time: Seconds::ZERO,
            last_value: 0.0,
            area: 0.0,
            peak: 0.0,
        }
    }

    /// Sets the signal to `value` from instant `t` onward.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the previous record — time-weighted
    /// accumulation needs monotone timestamps.
    pub fn record(&mut self, t: Seconds, value: f64) {
        assert!(
            t >= self.last_time,
            "non-monotone record at {t} after {}",
            self.last_time
        );
        self.area += self.last_value * (t - self.last_time).as_secs();
        self.last_time = t;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// The current value of the signal.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// `∫ value dt` over `[0, end]`, holding the last value to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` is before the last record.
    #[must_use]
    pub fn area_until(&self, end: Seconds) -> f64 {
        assert!(
            end >= self.last_time,
            "area_until({end}) precedes the last record at {}",
            self.last_time
        );
        self.area + self.last_value * (end - self.last_time).as_secs()
    }

    /// The time-weighted mean over `[0, end]` (zero for `end = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `end` is before the last record.
    #[must_use]
    pub fn mean_until(&self, end: Seconds) -> f64 {
        if end.is_zero() {
            return 0.0;
        }
        self.area_until(end) / end.as_secs()
    }

    /// The largest value ever recorded (zero if nothing was).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

/// A queue-depth trace: a [`TimeWeighted`] accumulator plus the
/// timestamped transition log both serving engines report.
///
/// [`record`](QueueStat::record) is transition-oriented: recording the
/// depth the signal already holds is a no-op, so decode-heavy runs do
/// not bloat the log with unchanged samples.
///
/// # Examples
///
/// ```
/// use elk_sim_core::QueueStat;
/// use elk_units::Seconds;
///
/// let mut q = QueueStat::new();
/// q.record(Seconds::new(0.1), 2); // two requests queued at t=0.1
/// q.record(Seconds::new(0.1), 2); // unchanged: not logged again
/// q.record(Seconds::new(0.5), 0); // both admitted at t=0.5
/// assert_eq!(q.samples(), &[(Seconds::new(0.1), 2), (Seconds::new(0.5), 0)]);
/// assert_eq!(q.max_depth(), 2);
/// // 0.4 s at depth 2 over a 1 s window.
/// assert!((q.mean_until(Seconds::new(1.0)) - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueueStat {
    weighted: TimeWeighted,
    samples: Vec<(Seconds, usize)>,
}

impl QueueStat {
    /// Depth `0` from `t = 0`, empty log.
    #[must_use]
    pub fn new() -> Self {
        QueueStat::default()
    }

    /// Sets the depth to `depth` from instant `t` onward, logging a
    /// `(t, depth)` sample when the depth actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an earlier record.
    pub fn record(&mut self, t: Seconds, depth: usize) {
        #[allow(clippy::float_cmp)] // depths are small exact integers
        if self.weighted.value() == depth as f64 {
            return;
        }
        self.weighted.record(t, depth as f64);
        self.samples.push((t, depth));
    }

    /// The current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.weighted.value() as usize
    }

    /// The deepest queue ever recorded.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.weighted.peak() as usize
    }

    /// `∫ depth dt` over `[0, end]` — see [`TimeWeighted::area_until`].
    ///
    /// # Panics
    ///
    /// Panics if `end` is before the last record.
    #[must_use]
    pub fn area_until(&self, end: Seconds) -> f64 {
        self.weighted.area_until(end)
    }

    /// The time-weighted mean depth over `[0, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end` is before the last record.
    #[must_use]
    pub fn mean_until(&self, end: Seconds) -> f64 {
        self.weighted.mean_until(end)
    }

    /// The transition log, in time order.
    #[must_use]
    pub fn samples(&self) -> &[(Seconds, usize)] {
        &self.samples
    }

    /// Consumes the trace, returning the transition log.
    #[must_use]
    pub fn into_samples(self) -> Vec<(Seconds, usize)> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The issue's motivating regime: many short decode steps must not
    /// drown out one long prefill stall. Two-step hand trace: depth 3
    /// for 0.9 s (a long prefill holds the queue), then depth 1 for
    /// 0.1 s. Sample mean = 2; time mean = (3·0.9 + 1·0.1) / 1 = 2.8.
    #[test]
    fn time_mean_differs_from_sample_mean_on_a_two_step_trace() {
        let mut tw = TimeWeighted::new();
        tw.record(Seconds::ZERO, 3.0);
        tw.record(Seconds::new(0.9), 1.0);
        let time_mean = tw.mean_until(Seconds::new(1.0));
        let sample_mean = (3.0 + 1.0) / 2.0;
        assert!((time_mean - 2.8).abs() < 1e-12, "got {time_mean}");
        assert!(
            (time_mean - sample_mean).abs() > 0.5,
            "the two means must provably differ: {time_mean} vs {sample_mean}"
        );
    }

    #[test]
    fn area_extends_the_last_value_to_the_horizon() {
        let mut tw = TimeWeighted::new();
        tw.record(Seconds::new(1.0), 2.0);
        // [0,1) at 0, [1,3) at 2 => area 4.
        assert!((tw.area_until(Seconds::new(3.0)) - 4.0).abs() < 1e-12);
        assert!((tw.mean_until(Seconds::new(3.0)) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_all_zeros() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(Seconds::ZERO), 0.0);
        assert_eq!(tw.mean_until(Seconds::new(5.0)), 0.0);
        assert_eq!(tw.peak(), 0.0);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn rejects_time_going_backwards() {
        let mut tw = TimeWeighted::new();
        tw.record(Seconds::new(2.0), 1.0);
        tw.record(Seconds::new(1.0), 2.0);
    }

    #[test]
    fn queue_stat_dedups_unchanged_depths() {
        let mut q = QueueStat::new();
        q.record(Seconds::ZERO, 0); // no-op: already 0
        q.record(Seconds::new(0.5), 4);
        q.record(Seconds::new(0.6), 4); // no-op
        q.record(Seconds::new(0.8), 1);
        assert_eq!(q.samples().len(), 2);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.max_depth(), 4);
        // 0.3 s at 4 + 0.2 s at 1 over 1 s.
        assert!((q.mean_until(Seconds::new(1.0)) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn queue_stat_into_samples_round_trips() {
        let mut q = QueueStat::new();
        q.record(Seconds::new(0.25), 2);
        let samples = q.into_samples();
        assert_eq!(samples, vec![(Seconds::new(0.25), 2)]);
    }
}
