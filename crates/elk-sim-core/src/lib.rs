//! Deterministic discrete-event simulation kernel for the Elk serving
//! engines.
//!
//! Both serving simulators — `elk-serve`'s per-replica continuous
//! batcher and `elk-cluster`'s routed multi-group engine — are event
//! sources on this one kernel instead of hand-rolling their own clock
//! and ordering rules. The kernel provides exactly three things:
//!
//! * **[`EventQueue`]** — a future-event list with a simulation clock,
//!   total-ordered by `(time, priority, seq)`. Simultaneous events are
//!   broken first by priority class (arrivals before step completions),
//!   then by schedule order, so the pop sequence is a pure function of
//!   the schedule calls — never of heap internals or thread count.
//! * **[`TimeWeighted`] / [`QueueStat`]** — statistics that weight a
//!   value by how long it was *held*, not how often it was sampled.
//!   A mean queue depth is an integral over time; averaging per-step
//!   samples lets thousands of 5 ms decode steps drown out one 900 ms
//!   prefill stall.
//! * **[`SimRng`]** — seeded splitmix64 streams with forkable
//!   substreams, so randomized policies (e.g. power-of-two-choices
//!   routing) are reproducible from the scenario seed alone.
//!
//! # Determinism rules
//!
//! Simulation code built on this kernel must not read wall-clock time,
//! OS entropy, or iterate hash maps in observable order. Every ordering
//! decision flows through [`EventQueue`]'s total order and every random
//! draw through a seeded [`SimRng`]; that is what upholds the engines'
//! byte-identical-reports-at-any-thread-count contract.
//!
//! # Example: a one-server queue
//!
//! ```
//! use elk_sim_core::{EventQueue, QueueStat, PRIO_ARRIVAL, PRIO_STEP_DONE};
//! use elk_units::Seconds;
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Arrival(usize),
//!     Done,
//! }
//!
//! let mut q = EventQueue::new();
//! let mut depth = QueueStat::new();
//! q.schedule(Seconds::new(0.0), PRIO_ARRIVAL, Ev::Arrival(0));
//! q.schedule(Seconds::new(0.1), PRIO_ARRIVAL, Ev::Arrival(1));
//!
//! let (mut waiting, mut busy, mut served) = (Vec::new(), false, 0);
//! while let Some(fired) = q.pop() {
//!     match fired.event {
//!         Ev::Arrival(id) => waiting.push(id),
//!         Ev::Done => {
//!             busy = false;
//!             served += 1;
//!         }
//!     }
//!     depth.record(q.now(), waiting.len());
//!     // Defer dispatch until everything at this instant has fired.
//!     if q.peek_time() == Some(q.now()) {
//!         continue;
//!     }
//!     if !busy && !waiting.is_empty() {
//!         waiting.remove(0);
//!         busy = true;
//!         depth.record(q.now(), waiting.len());
//!         q.schedule_after(Seconds::new(0.5), PRIO_STEP_DONE, Ev::Done);
//!     }
//! }
//! assert_eq!(served, 2);
//! assert_eq!(q.now(), Seconds::new(1.0)); // two back-to-back 0.5 s services
//! assert_eq!(depth.max_depth(), 1);
//! ```

#![warn(missing_docs)]

mod queue;
mod rng;
mod stats;

pub use queue::{EventKey, EventQueue, Scheduled};
pub use rng::SimRng;
pub use stats::{QueueStat, TimeWeighted};

/// Priority class for request arrivals — fires before any same-instant
/// step completion, so "everything arrived by now" includes arrivals at
/// exactly the current instant.
pub const PRIO_ARRIVAL: u8 = 0;

/// Priority class for step/service completions.
pub const PRIO_STEP_DONE: u8 = 1;
