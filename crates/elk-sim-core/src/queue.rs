//! The total-ordered event queue at the heart of the kernel.
//!
//! Every event is keyed `(time, priority, seq)`:
//!
//! * `time` — the simulation instant the event fires at;
//! * `priority` — the class tie-break for simultaneous events (lower
//!   fires first; e.g. arrivals before step completions, so an engine
//!   observing "everything that has arrived by now" at a completion
//!   instant sees arrivals at exactly that instant too);
//! * `seq` — the schedule-order tie-break: among events with equal
//!   `(time, priority)` the one scheduled first fires first (FIFO).
//!
//! The triple is a total order, so the pop sequence is a pure function
//! of the schedule calls — never of heap internals, hash iteration, or
//! thread interleaving. That is what lets the serving engines promise
//! byte-identical reports at any `--threads` count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use elk_obs::Obs;
use elk_units::Seconds;

/// The total-order key of a scheduled event: `(time, priority, seq)`,
/// compared lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    /// Simulation instant the event fires at.
    pub time: Seconds,
    /// Tie-break among simultaneous events — lower fires first.
    pub priority: u8,
    /// Schedule-order tie-break (assigned by [`EventQueue::schedule`]).
    pub seq: u64,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.priority, self.seq).cmp(&(other.time, other.priority, other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An event popped from the queue: its key plus the typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The `(time, priority, seq)` key the event fired under.
    pub key: EventKey,
    /// The event payload.
    pub event: E,
}

/// Heap entry: ordered by key only (reversed, so the `BinaryHeap`
/// max-heap yields the *smallest* key first). The payload never
/// participates in ordering, so `E` needs no `Ord`.
#[derive(Debug)]
struct Entry<E> {
    key: EventKey,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key) // reversed: min-heap behavior
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Kernel-side observation state: dispatch spans on one track, a
/// queue-length gauge, and per-priority-class counters. Everything it
/// emits is keyed to simulated time, so attaching it never perturbs
/// the pop order or the byte-identity contract.
#[derive(Debug)]
struct QueueObs {
    obs: Obs,
    track: String,
    classes: Vec<(u8, String)>,
    cap: u64,
    last: Seconds,
}

/// A deterministic future-event list with a simulation clock.
///
/// [`pop`](EventQueue::pop) advances the clock to the fired event's
/// time; [`schedule`](EventQueue::schedule) refuses to schedule into
/// the past, so causality violations fail loudly instead of silently
/// reordering history.
///
/// # Examples
///
/// ```
/// use elk_sim_core::EventQueue;
/// use elk_units::Seconds;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(Seconds::new(2.0), 1, "step-complete");
/// q.schedule(Seconds::new(2.0), 0, "arrival"); // same instant, higher class
/// q.schedule(Seconds::new(1.0), 1, "first");
///
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.pop().unwrap().event, "arrival"); // priority 0 beats 1
/// assert_eq!(q.pop().unwrap().event, "step-complete");
/// assert_eq!(q.now(), Seconds::new(2.0));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Seconds,
    next_seq: u64,
    processed: u64,
    peak_len: usize,
    obs: Option<QueueObs>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Seconds::ZERO,
            next_seq: 0,
            processed: 0,
            peak_len: 0,
            obs: None,
        }
    }

    /// Attaches an observation sink: dispatch spans and a queue-length
    /// gauge on `track` (bounded by the handle's sampling cap), plus
    /// per-priority-class dispatch counters named
    /// `{track}.dispatch.{class}`. `classes` names the engine's
    /// priority levels (unnamed priorities fall back to `prio{n}`).
    ///
    /// Purely additive: attaching observation cannot change the pop
    /// order, the clock, or any report field.
    pub fn observe(&mut self, obs: Obs, track: &str, classes: &[(u8, &str)]) {
        if !obs.enabled() {
            return;
        }
        let cap = obs.sample();
        self.obs = Some(QueueObs {
            obs,
            track: track.to_string(),
            classes: classes
                .iter()
                .map(|&(p, name)| (p, name.to_string()))
                .collect(),
            cap,
            last: self.now,
        });
    }

    /// The simulation clock: the fire time of the last popped event
    /// (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Schedules `event` at `time` with class `priority` and returns its
    /// total-order key. Among equal `(time, priority)` pairs, earlier
    /// schedule calls fire first.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before [`now`](EventQueue::now) — an event
    /// source tried to rewrite history.
    pub fn schedule(&mut self, time: Seconds, priority: u8, event: E) -> EventKey {
        assert!(
            time >= self.now,
            "causality violation: scheduling at {time} with the clock at {}",
            self.now
        );
        let key = EventKey {
            time,
            priority,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Entry { key, event });
        self.peak_len = self.peak_len.max(self.heap.len());
        key
    }

    /// Schedules `event` a `delay` after the current clock.
    ///
    /// # Panics
    ///
    /// Never — a non-negative delay cannot violate causality.
    pub fn schedule_after(&mut self, delay: Seconds, priority: u8, event: E) -> EventKey {
        let at = self.now + delay;
        self.schedule(at, priority, event)
    }

    /// Fires the next event in `(time, priority, seq)` order, advancing
    /// the clock to its time. Returns `None` when the future is empty.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.key.time;
        self.processed += 1;
        if let Some(o) = &mut self.obs {
            let class = o
                .classes
                .iter()
                .find(|(p, _)| *p == entry.key.priority)
                .map_or_else(
                    || format!("prio{}", entry.key.priority),
                    |(_, name)| name.clone(),
                );
            o.obs.counter(&format!("{}.dispatch.{class}", o.track), 1);
            if self.processed <= o.cap {
                o.obs.span(&o.track, &class, o.last, self.now - o.last, &[]);
                o.obs
                    .gauge(&o.track, "queue_len", self.now, self.heap.len() as f64);
            }
            o.last = self.now;
        }
        Some(Scheduled {
            key: entry.key,
            event: entry.event,
        })
    }

    /// The fire time of the next event, if any — without popping it.
    /// Engines use this to defer scheduling decisions until every event
    /// at the current instant has fired.
    #[must_use]
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// Events still scheduled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events fired so far — the denominator-free half of an
    /// events-per-second throughput measurement.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The largest number of events simultaneously scheduled so far —
    /// the kernel's peak heap size, a cheap memory-pressure proxy the
    /// serving reports expose as `peak_event_queue_len`.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_priority_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 0, "d");
        q.schedule(Seconds::new(1.0), 1, "b");
        q.schedule(Seconds::new(1.0), 0, "a");
        q.schedule(Seconds::new(1.0), 1, "c"); // same key class as "b": FIFO
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), 0, ());
        q.schedule(Seconds::new(5.0), 0, ());
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(2.0));
        assert_eq!(q.peek_time(), Some(Seconds::new(5.0)));
        q.pop();
        assert_eq!(q.now(), Seconds::new(5.0));
        assert_eq!(q.events_processed(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative_to_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(4.0), 0, "base");
        q.pop();
        let key = q.schedule_after(Seconds::new(1.5), 2, "later");
        assert_eq!(key.time, Seconds::new(5.5));
        assert_eq!(key.priority, 2);
    }

    #[test]
    fn seq_keys_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let a = q.schedule(Seconds::new(1.0), 0, ());
        let b = q.schedule(Seconds::new(1.0), 0, ());
        assert!(a.seq < b.seq);
        assert!(a < b, "equal (time, priority): schedule order decides");
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), 0, ());
        q.pop();
        q.schedule(Seconds::new(1.0), 0, ());
    }

    #[test]
    fn peak_len_tracks_the_heap_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(Seconds::new(1.0), 0, ());
        q.schedule(Seconds::new(2.0), 0, ());
        q.schedule(Seconds::new(3.0), 0, ());
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule(Seconds::new(4.0), 0, ());
        assert_eq!(q.peak_len(), 3, "draining never lowers the peak");
    }

    #[test]
    fn observation_is_purely_additive() {
        use elk_obs::{MemRecorder, Obs, TraceEvent};
        use std::sync::Arc;

        let run = |observe: bool| -> (Vec<&'static str>, Option<elk_obs::ObsBuf>) {
            let mut q = EventQueue::new();
            let rec = Arc::new(MemRecorder::new());
            if observe {
                q.observe(
                    Obs::new(rec.clone(), 2),
                    "kernel",
                    &[(0, "arrival"), (1, "step_done")],
                );
            }
            q.schedule(Seconds::new(1.0), 0, "a");
            q.schedule(Seconds::new(2.0), 1, "b");
            q.schedule(Seconds::new(3.0), 7, "c");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
            (order, observe.then(|| rec.take_buf()))
        };

        let (plain, _) = run(false);
        let (observed, buf) = run(true);
        assert_eq!(plain, observed, "observation must not change pop order");

        let buf = buf.unwrap();
        assert_eq!(buf.counters["kernel.dispatch.arrival"], 1);
        assert_eq!(buf.counters["kernel.dispatch.step_done"], 1);
        assert_eq!(
            buf.counters["kernel.dispatch.prio7"], 1,
            "unnamed class falls back"
        );
        // Sampling cap 2: spans + gauges only for the first two pops.
        let spans = buf
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span { .. }))
            .count();
        let gauges = buf
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Gauge { .. }))
            .count();
        assert_eq!(spans, 2);
        assert_eq!(gauges, 2);
        assert!(matches!(
            &buf.events[0],
            TraceEvent::Span { name, dur, .. } if name == "arrival" && *dur == Seconds::new(1.0)
        ));
    }

    #[test]
    fn empty_queue_pops_none_and_keeps_the_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Seconds::ZERO);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.len(), 0);
    }
}
