//! Seeded deterministic random streams for event sources.
//!
//! Simulation code must never touch wall-clock or OS entropy — every
//! random draw comes from a [`SimRng`] handle whose seed is part of the
//! scenario. Handles can be [`fork`](SimRng::fork)ed into independent
//! substreams (one per event source), so adding a consumer never
//! perturbs the draws of existing ones.

/// A seeded splitmix64 stream: tiny state, full 64-bit period per seed,
/// and good enough statistical quality for routing/workload choices.
///
/// # Examples
///
/// ```
/// use elk_sim_core::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut sub = a.fork(7); // independent substream
/// let pick = sub.gen_index(4);
/// assert!(pick < 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

/// splitmix64's golden-gamma increment.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

impl SimRng {
    /// A stream seeded with `seed` (any value, zero included).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent substream labeled `label`. Forking with
    /// different labels from the same parent state yields decorrelated
    /// streams; the parent advances by one draw.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng {
            state: self.next_u64() ^ label.wrapping_mul(GAMMA),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        // Lemire-style widening multiply avoids the modulo bias of `% n`.
        let hi = ((u128::from(self.next_u64()) * n as u128) >> 64) as usize;
        debug_assert!(hi < n);
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        let mut dedup = draws.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), draws.len(), "no short cycles");
    }

    #[test]
    fn forks_are_decorrelated_from_the_parent() {
        let mut parent = SimRng::new(9);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let a: Vec<u64> = (0..32).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| f2.next_u64()).collect();
        assert_ne!(a, b);
        // Forking is itself deterministic.
        let mut parent2 = SimRng::new(9);
        let mut f1b = parent2.fork(1);
        assert_eq!(a[0], f1b.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_spread() {
        let mut r = SimRng::new(5);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_index_is_unbiased_enough_and_in_range() {
        let mut r = SimRng::new(77);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[r.gen_index(3)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} got {c}/3000");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_index_rejects_zero() {
        let _ = SimRng::new(0).gen_index(0);
    }
}
