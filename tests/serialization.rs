//! Serde round-trips of the public artifacts: compiled programs,
//! schedules, and simulator reports are data a downstream user will cache
//! to disk (the paper's artifact stores execution traces the same way).

use elk::compiler::{Compiler, DeviceProgram, Schedule};
use elk::prelude::*;
use elk::sim::SimReport;

fn fixture() -> (SystemConfig, elk::model::ModelGraph) {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    (presets::ipu_pod4(), cfg.build(Workload::decode(8, 512), 4))
}

#[test]
fn device_program_round_trips_through_json() {
    let (system, graph) = fixture();
    let plan = Compiler::new(system).compile(&graph).expect("compile");
    let json = serde_json::to_string(&plan.program).expect("serialize");
    let back: DeviceProgram = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, plan.program);
    back.validate().expect("still well-formed");
}

#[test]
fn schedule_round_trips_through_json() {
    let (system, graph) = fixture();
    let plan = Compiler::new(system).compile(&graph).expect("compile");
    let json = serde_json::to_string(&plan.schedule).expect("serialize");
    let back: Schedule = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, plan.schedule);
}

#[test]
fn sim_report_round_trips_through_json() {
    let (system, graph) = fixture();
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(
        &plan.program,
        &system,
        &SimOptions::default().with_trace(16),
    );
    let json = serde_json::to_string(&report).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
}

#[test]
fn model_graph_and_system_round_trip() {
    let (system, graph) = fixture();
    let gj = serde_json::to_string(&graph).expect("graph");
    let back: elk::model::ModelGraph = serde_json::from_str(&gj).expect("graph back");
    assert_eq!(back, graph);
    assert_eq!(back.total_hbm_load(), graph.total_hbm_load());
    let sj = serde_json::to_string(&system).expect("system");
    let sys_back: SystemConfig = serde_json::from_str(&sj).expect("system back");
    assert_eq!(sys_back, system);
}
