//! Golden-value regression test: a small fixed model on a fixed preset
//! must keep producing the exact same compiled program and simulator
//! report. Any cost-model, partitioner, scheduler, or simulator change
//! that shifts these numbers is *visible* — if the shift is intended,
//! update the constants below in the same commit and say why.
//!
//! The pipeline is fully deterministic (the profile RNG is seeded, the
//! schedule search is exhaustive over a fixed candidate set), so the
//! float comparisons use a tight relative tolerance that only absorbs
//! cross-platform libm differences.

use elk::compiler::Catalog;
use elk::partition::Partitioner;
use elk::prelude::*;

/// Relative tolerance for pinned floats.
const REL: f64 = 1e-9;

fn assert_close(name: &str, got: f64, want: f64) {
    let tol = REL * want.abs().max(1e-300);
    assert!(
        (got - want).abs() <= tol,
        "{name} drifted: got {got:?}, pinned {want:?}"
    );
}

#[test]
fn small_llama_decode_on_ipu_pod4_matches_pinned_report() {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(16, 512), 4);
    let system = presets::ipu_pod4();

    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &system, &SimOptions::default());

    // Program shape.
    assert_eq!(plan.program.specs.len(), 31, "operator count");
    assert_eq!(plan.program.instrs.len(), 62, "instruction count");
    assert_eq!(plan.program.validate(), Ok(()));

    // Soundness.
    assert_eq!(report.capacity_violations, 0);
    assert_eq!(plan.estimate.capacity_violations, 0);
    assert_eq!(report.exec_spans.len(), 31);

    // Exact integer quantities.
    assert_eq!(report.hbm_bytes, Bytes::new(564_971_520), "HBM read volume");
    assert_eq!(report.peak_resident, Bytes::new(181_782), "peak residency");

    // Pinned latencies (seconds).
    assert_close("total", report.total.as_secs(), 1.931_976_061_036_663_2e-4);
    assert_close(
        "estimate.total",
        plan.estimate.total.as_secs(),
        2.261_333_889_447_634_4e-4,
    );

    // Per-phase makespan decomposition (Fig. 18/20 buckets).
    assert_close(
        "buckets.preload",
        report.buckets.preload.as_secs(),
        1.874_645_149_230_957e-5,
    );
    assert_close(
        "buckets.execute",
        report.buckets.execute.as_secs(),
        6.179_917_201_427_709e-5,
    );
    assert_close(
        "buckets.overlapped",
        report.buckets.overlapped.as_secs(),
        1.102_910_526_432_444_5e-4,
    );
    assert_close(
        "buckets.interconnect",
        report.buckets.interconnect.as_secs(),
        2.360_929_953_835_227_3e-6,
    );
    assert_close("buckets.idle", report.buckets.idle.as_secs(), 0.0);
    assert_close(
        "buckets sum equals makespan",
        report.buckets.total().as_secs(),
        report.total.as_secs(),
    );

    // Utilizations.
    assert_close("hbm_util", report.hbm_util, 0.664_913_264_785_591_7);
    assert_close("noc_util", report.noc_util, 0.443_561_060_748_087_27);
    assert_close(
        "achieved TFLOPS",
        report.achieved.get(),
        3.350_737_004_746_536_3e13,
    );
}

/// Determinism suite for the `elk-par` work pool: compiling the zoo
/// models on 1 and on 8 worker threads must produce byte-identical
/// catalogs, plan selections, and simulator reports. Byte identity is
/// checked on the serialized JSON, not just structural equality, so
/// even a float that round-trips differently would be caught.
#[test]
fn compilation_is_thread_count_invariant_across_the_zoo() {
    let system = presets::ipu_pod4();
    for mut cfg in [zoo::llama2_13b(), zoo::gemma2_27b(), zoo::opt_30b()] {
        cfg.layers = 2; // the plan space repeats per layer
        let name = cfg.name.clone();
        let graph = cfg.build(Workload::decode(16, 512), 4);

        let opts = |threads| CompilerOptions {
            threads,
            ..CompilerOptions::default()
        };
        let seq = Compiler::with_options(system.clone(), opts(1));
        let par = Compiler::with_options(system.clone(), opts(8));

        // Catalogs: per-operator plan lists and frontiers.
        let p_seq = Partitioner::new(&system.chip, seq.cost_model());
        let p_par = Partitioner::new(&system.chip, par.cost_model());
        let cat_seq = Catalog::build_par(&graph, &p_seq, 1).expect("catalog");
        let cat_par = Catalog::build_par(&graph, &p_par, 8).expect("catalog");
        assert_eq!(cat_seq.len(), cat_par.len());
        for i in 0..cat_seq.len() {
            let id = elk::model::OpId(i);
            let a = serde_json::to_string(cat_seq.op(id)).expect("serialize");
            let b = serde_json::to_string(cat_par.op(id)).expect("serialize");
            assert_eq!(a, b, "{name}: catalog op {i} not byte-identical");
        }

        // Plan selection: program, schedule, and timeline estimate.
        let plan_seq = seq.compile(&graph).expect("compile @1");
        let plan_par = par.compile(&graph).expect("compile @8");
        assert_eq!(
            plan_seq.program, plan_par.program,
            "{name}: device program diverged"
        );
        assert_eq!(
            serde_json::to_string(&plan_seq.schedule).expect("serialize"),
            serde_json::to_string(&plan_par.schedule).expect("serialize"),
            "{name}: schedule not byte-identical"
        );
        assert_eq!(plan_seq.estimate, plan_par.estimate);

        // Simulator reports.
        let r_seq = simulate(&plan_seq.program, &system, &SimOptions::default());
        let r_par = simulate(&plan_par.program, &system, &SimOptions::default());
        assert_eq!(
            serde_json::to_string(&r_seq).expect("serialize"),
            serde_json::to_string(&r_par).expect("serialize"),
            "{name}: SimReport not byte-identical"
        );
    }
}
