//! Golden-value regression test: a small fixed model on a fixed preset
//! must keep producing the exact same compiled program and simulator
//! report. Any cost-model, partitioner, scheduler, or simulator change
//! that shifts these numbers is *visible* — if the shift is intended,
//! update the constants below in the same commit and say why.
//!
//! The pipeline is fully deterministic (the profile RNG is seeded, the
//! schedule search is exhaustive over a fixed candidate set), so the
//! float comparisons use a tight relative tolerance that only absorbs
//! cross-platform libm differences.

use elk::prelude::*;

/// Relative tolerance for pinned floats.
const REL: f64 = 1e-9;

fn assert_close(name: &str, got: f64, want: f64) {
    let tol = REL * want.abs().max(1e-300);
    assert!(
        (got - want).abs() <= tol,
        "{name} drifted: got {got:?}, pinned {want:?}"
    );
}

#[test]
fn small_llama_decode_on_ipu_pod4_matches_pinned_report() {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(16, 512), 4);
    let system = presets::ipu_pod4();

    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &system, &SimOptions::default());

    // Program shape.
    assert_eq!(plan.program.specs.len(), 31, "operator count");
    assert_eq!(plan.program.instrs.len(), 62, "instruction count");
    assert_eq!(plan.program.validate(), Ok(()));

    // Soundness.
    assert_eq!(report.capacity_violations, 0);
    assert_eq!(plan.estimate.capacity_violations, 0);
    assert_eq!(report.exec_spans.len(), 31);

    // Exact integer quantities.
    assert_eq!(report.hbm_bytes, Bytes::new(564_971_520), "HBM read volume");
    assert_eq!(report.peak_resident, Bytes::new(181_782), "peak residency");

    // Pinned latencies (seconds).
    assert_close("total", report.total.as_secs(), 1.931_976_061_036_663_2e-4);
    assert_close(
        "estimate.total",
        plan.estimate.total.as_secs(),
        2.261_333_889_447_634_4e-4,
    );

    // Per-phase makespan decomposition (Fig. 18/20 buckets).
    assert_close(
        "buckets.preload",
        report.buckets.preload.as_secs(),
        1.874_645_149_230_957e-5,
    );
    assert_close(
        "buckets.execute",
        report.buckets.execute.as_secs(),
        6.179_917_201_427_709e-5,
    );
    assert_close(
        "buckets.overlapped",
        report.buckets.overlapped.as_secs(),
        1.102_910_526_432_444_5e-4,
    );
    assert_close(
        "buckets.interconnect",
        report.buckets.interconnect.as_secs(),
        2.360_929_953_835_227_3e-6,
    );
    assert_close("buckets.idle", report.buckets.idle.as_secs(), 0.0);
    assert_close(
        "buckets sum equals makespan",
        report.buckets.total().as_secs(),
        report.total.as_secs(),
    );

    // Utilizations.
    assert_close("hbm_util", report.hbm_util, 0.664_913_264_785_591_7);
    assert_close("noc_util", report.noc_util, 0.443_561_060_748_087_27);
    assert_close(
        "achieved TFLOPS",
        report.achieved.get(),
        3.350_737_004_746_536_3e13,
    );
}
