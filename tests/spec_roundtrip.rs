//! Property tests for the scenario-spec serde layer: any spec the
//! strategies can produce must survive struct → JSON → struct
//! unchanged, through both the compact and the pretty emitter.
//!
//! The spec types hand-write both `Serialize` and `Deserialize` (the
//! derive shim cannot express defaults or unknown-key rejection), so
//! the two directions can silently drift apart — a renamed key on one
//! side only, a forgotten field — and this suite is what pins them
//! together.

use proptest::prelude::*;

use elk::baselines::Design;
use elk::model::Phase;
use elk::serve::{ArrivalProcess, LengthDist, RouterPolicy};
use elk::spec::spec::{
    AutoscaleSpec, ChipSpec, ClusterSpec, CompilerSpec, DisaggSpec, HbmSpec, ModelSpec,
    ObserveSpec, PlanSpec, ScenarioSpec, SeqBucketsSpec, ServingSpec, SimSpec, SloSpec, SweepAxis,
    SweepSpec, SystemSpec, TenancySpec, TenantClassSpec, TopologySpec, TraceGenSpec,
    TraceSourceSpec, TraceSpec, WorkloadSpec,
};
use elk::spec::{run_sweep, SweepCommand};
use elk::trace::{LengthModel, RateShape};

fn arb_system() -> impl Strategy<Value = SystemSpec> {
    (
        0usize..4,
        prop::sample::select(vec!["ipu_pod4", "ipu_pod4_mesh", "single_chip"]),
        (16u64..=2048, 1u64..=8, 1.0f64..900.0),
        any::<bool>(),
    )
        .prop_map(|(variant, preset, (cores, chips, bw), mesh)| {
            if variant == 0 {
                SystemSpec::Preset(preset.to_string())
            } else {
                SystemSpec::Custom {
                    chip: ChipSpec {
                        name: "prop-chip".into(),
                        cores,
                        sram_per_core_kib: 624,
                        io_buffer_per_core_kib: 8,
                        matmul_tflops: bw,
                        vector_tflops: bw / 10.0,
                        sram_bw_gb_s: 21.3,
                        sram_contention: if mesh { "blocking" } else { "concurrent" }.into(),
                        topology: if mesh {
                            TopologySpec::Mesh {
                                total_gib_s: bw * 8.0,
                            }
                        } else {
                            TopologySpec::AllToAll {
                                core_link_gib_s: bw / 100.0,
                            }
                        },
                    },
                    chips,
                    hbm: HbmSpec {
                        channels: chips,
                        channel_bw_gib_s: bw,
                        capacity_gib: 32 + chips,
                    },
                    inter_chip_bw_gib_s: bw * 2.0,
                }
            }
        })
}

fn arb_model() -> impl Strategy<Value = ModelSpec> {
    (
        0usize..4,
        prop::sample::select(vec![
            "llama13", "gemma27", "opt30", "llama70", "mixtral", "dit",
        ]),
        1u32..=4,
        any::<bool>(),
    )
        .prop_map(|(variant, zoo, layers, with_layers)| match variant {
            0 => ModelSpec::Zoo {
                zoo: zoo.to_string(),
                layers: with_layers.then_some(layers),
            },
            1 => {
                let mut cfg = elk::model::zoo::llama2_13b();
                cfg.layers = layers;
                ModelSpec::Transformer(cfg)
            }
            2 => {
                let mut cfg = elk::model::zoo::mixtral_8x7b();
                cfg.layers = layers;
                ModelSpec::Moe(cfg)
            }
            _ => {
                let mut cfg = elk::model::zoo::dit_xl();
                cfg.layers = layers;
                ModelSpec::Dit(cfg)
            }
        })
}

/// Every `workload.trace` shape: absent, a recorded file, or each of
/// the three generator rate shapes paired with a distinct length model.
fn arb_trace_source() -> impl Strategy<Value = Option<TraceSourceSpec>> {
    (
        0usize..5,
        (0u64..=1 << 48, 1usize..=256, 0u64..=6),
        (0.5f64..900.0, 0.05f64..0.95, 0.05f64..5.0),
        (1u64..=256, 1u64..=512, 1.01f64..3.0),
    )
        .prop_map(
            |(variant, (seed, requests, tenants), (rps, frac, period_s), (lo, span, alpha))| {
                match variant {
                    0 => None,
                    1 => Some(TraceSourceSpec::File(format!("traces/prop-{seed}.jsonl"))),
                    v => {
                        let rate = match v {
                            2 => RateShape::Constant { rate_rps: rps },
                            3 => RateShape::Diurnal {
                                mean_rps: rps,
                                amplitude: frac,
                                period_s,
                            },
                            _ => RateShape::BurstTrain {
                                base_rps: rps,
                                burst_rps: rps * 4.0,
                                period_s,
                                burst_s: period_s * frac,
                            },
                        };
                        let prompt_len = match v {
                            2 => LengthModel::Fixed { tokens: lo },
                            3 => LengthModel::Uniform { lo, hi: lo + span },
                            _ => LengthModel::HeavyTail {
                                lo,
                                alpha,
                                cap: lo + span,
                            },
                        };
                        Some(TraceSourceSpec::Generate(TraceGenSpec {
                            seed,
                            requests,
                            rate,
                            prompt_len,
                            output_len: LengthModel::Uniform {
                                lo: 1,
                                hi: 1 + span,
                            },
                            tenants,
                        }))
                    }
                }
            },
        )
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop::sample::select(vec![Phase::Decode, Phase::Prefill, Phase::TrainingForward]),
        1u64..=64,
        1u64..=8192,
        any::<bool>(),
        1u64..=8,
        arb_trace_source(),
    )
        .prop_map(
            |(phase, batch, seq_len, with_shards, shards, trace)| WorkloadSpec {
                phase,
                batch,
                seq_len,
                shards: with_shards.then_some(shards),
                trace,
            },
        )
}

fn arb_compiler() -> impl Strategy<Value = CompilerSpec> {
    (0usize..5, 1usize..=5, 0usize..=8).prop_map(|(first, count, threads)| CompilerSpec {
        design: (0..count)
            .map(|i| Design::ALL[(first + i) % Design::ALL.len()])
            .collect(),
        threads,
    })
}

fn arb_serving() -> impl Strategy<Value = ServingSpec> {
    (
        (0u64..=1 << 48, 1usize..=64, 0.5f64..2000.0),
        (0usize..3, 1u64..=512, 1u64..=64),
        (1usize..=4, 1u64..=64, 1u64..=16384),
        (0u32..=4, 1u64..=4096),
        any::<bool>(),
        ((0.1f64..10_000.0, 0.1f64..500.0), arb_tenancy()),
    )
        .prop_map(
            |(
                (seed, requests, rate),
                (dist, lo, span),
                (replicas, max_batch, max_prefill_tokens),
                (bucket_pow, bucket_span),
                bucket_batch,
                ((ttft_ms, tpot_ms), tenants),
            )| {
                let prompt_len = match dist {
                    0 => LengthDist::Fixed(lo),
                    1 => LengthDist::Uniform { lo, hi: lo + span },
                    _ => LengthDist::Bimodal {
                        short: (lo, lo + span),
                        long: (lo * 10, lo * 10 + span),
                        long_weight: 0.25,
                    },
                };
                let arrivals = if dist == 2 {
                    ArrivalProcess::Bursty {
                        rate_rps: rate,
                        burst_factor: 3.0,
                        period_s: 0.5,
                        duty: 0.2,
                    }
                } else {
                    ArrivalProcess::Poisson { rate_rps: rate }
                };
                let min = 1u64 << bucket_pow;
                ServingSpec {
                    trace: TraceSpec {
                        seed,
                        requests,
                        arrivals,
                        prompt_len,
                        output_len: LengthDist::Fixed(lo),
                    },
                    replicas,
                    max_batch,
                    max_prefill_tokens,
                    seq_buckets: SeqBucketsSpec {
                        min,
                        max: min + bucket_span,
                    },
                    bucket_batch,
                    slo: SloSpec { ttft_ms, tpot_ms },
                    tenants,
                    threads: replicas,
                }
            },
        )
}

/// The `serving.tenants` / `cluster.tenants` section: absent or a
/// class ladder with an optional rate limit, model alias, and shedder.
fn arb_tenancy() -> impl Strategy<Value = Option<TenancySpec>> {
    (
        0usize..3,
        1usize..=3,
        (0.5f64..200.0, 1u64..=8),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        (0.5f64..8.0, 1.0f64..200.0),
    )
        .prop_map(
            |(variant, n_classes, (rate, burst), (limited, aliased, defer), (depth, defer_ms))| {
                if variant == 0 {
                    return None;
                }
                let names = ["gold", "silver", "bronze"];
                let classes: Vec<TenantClassSpec> = (0..n_classes)
                    .map(|i| TenantClassSpec {
                        name: names[i].into(),
                        priority: (i * 7) as u64,
                        slo: SloSpec {
                            ttft_ms: 100.0 * (i + 1) as f64,
                            tpot_ms: 20.0 * (i + 1) as f64,
                        },
                        rate_rps: (limited && i > 0).then_some(rate),
                        burst,
                        model: (aliased && i + 1 == n_classes).then(|| "opt30".into()),
                        sheddable: i + 1 == n_classes,
                    })
                    .collect();
                let map = (0..n_classes)
                    .map(|i| (format!("t{i}"), names[i].to_string()))
                    .collect();
                Some(TenancySpec {
                    classes,
                    map,
                    default_class: names[n_classes - 1].into(),
                    shed_queue_depth: (variant == 2).then_some(depth),
                    shed_policy: if defer { "defer" } else { "reject" }.into(),
                    defer_ms,
                })
            },
        )
}

/// The `cluster.autoscale` section: absent or a full knob set.
fn arb_autoscale() -> impl Strategy<Value = Option<AutoscaleSpec>> {
    (
        0usize..3,
        (1u64..=2, 0u64..=6),
        10.0f64..500.0,
        (0.5f64..8.0, 0.05f64..0.45),
        0.5f64..0.99,
        0.0f64..64.0,
    )
        .prop_map(
            |(variant, (min, extra), interval_ms, (up, down), slo_target, cold)| {
                (variant != 0).then_some(AutoscaleSpec {
                    min_groups: min,
                    max_groups: min + extra,
                    interval_ms,
                    up_queue_depth: up,
                    down_queue_depth: down,
                    slo_target,
                    cold_start_steps: cold,
                })
            },
        )
}

/// The `cluster.disaggregate` section: absent or a full pool split.
fn arb_disagg() -> impl Strategy<Value = Option<DisaggSpec>> {
    (
        0usize..3,
        (1u64..=4, 1u64..=2, 1u64..=4),
        (1u64..=4, 1u64..=2, 1u64..=4),
        0u64..=1024,
        any::<bool>(),
    )
        .prop_map(|(variant, p, d, chunk_tokens, shared_chips)| {
            (variant != 0).then_some(DisaggSpec {
                prefill: PlanSpec {
                    tp: p.0,
                    pp: p.1,
                    dp: p.2,
                },
                decode: PlanSpec {
                    tp: d.0,
                    pp: d.1,
                    dp: d.2,
                },
                chunk_tokens,
                shared_chips,
            })
        })
}

fn arb_cluster() -> impl Strategy<Value = Option<ClusterSpec>> {
    (
        0usize..3,
        (1u64..=4, 1u64..=4, 1u64..=4),
        ((any::<bool>(), 1u64..=8), any::<bool>()),
        0usize..4,
        (any::<bool>(), 0u64..=1 << 32, 0usize..=8),
        (arb_autoscale(), arb_disagg(), arb_tenancy()),
    )
        .prop_map(
            |(
                variant,
                (tp, pp, dp),
                ((with_micro, micro), mesh_links),
                policies,
                (serve, seed, threads),
                (autoscale, disaggregate, tenants),
            )| {
                if variant == 0 {
                    return None;
                }
                let microbatches = with_micro.then_some(micro);
                let all = [
                    RouterPolicy::RoundRobin,
                    RouterPolicy::LeastOutstanding,
                    RouterPolicy::PowerOfTwoChoices { seed },
                ];
                let router: Vec<RouterPolicy> = (0..=policies.min(2))
                    .map(|i| all[(policies + i) % all.len()])
                    .collect();
                Some(ClusterSpec {
                    plan: (variant == 2).then_some(PlanSpec { tp, pp, dp }),
                    microbatches,
                    interconnect: if mesh_links {
                        "fully_connected"
                    } else {
                        "ring"
                    }
                    .into(),
                    router,
                    serve,
                    autoscale,
                    disaggregate,
                    tenants,
                    threads,
                })
            },
        )
}

fn arb_sweep() -> impl Strategy<Value = Option<SweepSpec>> {
    (
        0usize..3,
        prop::sample::select(vec![
            SweepCommand::Compile,
            SweepCommand::Simulate,
            SweepCommand::Serve,
        ]),
        1u64..=64,
    )
        .prop_map(|(axes, command, v)| {
            if axes == 0 {
                return None;
            }
            let axis = |path: &str, scale: u64| SweepAxis {
                path: path.to_string(),
                values: (1..=axes as u64)
                    .map(|i| serde::Value::U64(i * scale * v))
                    .collect(),
            };
            let mut all = vec![axis("workload.batch", 1)];
            if axes > 1 {
                all.push(axis("system.chip.cores", 16));
            }
            Some(SweepSpec { command, axes: all })
        })
}

fn arb_observe() -> impl Strategy<Value = ObserveSpec> {
    (any::<bool>(), 0usize..3, 1u64..=256).prop_map(|(enable, timeline, sample)| ObserveSpec {
        enable,
        timeline: match timeline {
            0 => None,
            1 => Some("out/timeline.json".to_string()),
            _ => Some(format!("results/prop-{sample}.timeline.json")),
        },
        sample,
    })
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        (arb_system(), arb_model(), arb_workload()),
        (
            arb_compiler(),
            arb_serving(),
            arb_observe(),
            arb_cluster(),
            arb_sweep(),
        ),
        (0.0f64..0.5, 0u64..=1 << 40, 0usize..=64),
    )
        .prop_map(
            |(
                (system, model, workload),
                (compiler, serving, observe, cluster, sweep),
                (noise_sigma, noise_seed, trace_samples),
            )| ScenarioSpec {
                name: format!("prop-{noise_seed}"),
                system,
                model,
                workload,
                compiler,
                sim: SimSpec {
                    noise_sigma,
                    noise_seed,
                    trace_samples,
                },
                serving,
                observe,
                cluster,
                sweep,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn scenario_specs_round_trip_through_json(spec in arb_scenario()) {
        // Pretty emitter (what `ScenarioSpec::to_json` and the CLI use).
        let pretty = spec.to_json();
        let back = ScenarioSpec::from_json(&pretty).expect("pretty round-trip parses");
        prop_assert_eq!(&back, &spec);

        // Compact emitter.
        let compact = serde_json::to_string(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&compact).expect("compact round-trip parses");
        prop_assert_eq!(&back, &spec);

        // Serialization is deterministic: same spec, same bytes.
        prop_assert_eq!(spec.to_json(), pretty);
    }

    #[test]
    fn workload_and_compiler_sections_round_trip_alone(
        workload in arb_workload(),
        compiler in arb_compiler(),
    ) {
        let json = serde_json::to_string(&workload).expect("serialize");
        let back: WorkloadSpec = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(back, workload);

        let json = serde_json::to_string(&compiler).expect("serialize");
        let back: CompilerSpec = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(back, compiler);
    }
}

/// `cluster.disaggregate` is strict at every level: unknown keys are
/// rejected with their dotted context (not silently ignored), and both
/// pool plans are required.
#[test]
fn disaggregate_rejects_unknown_and_missing_keys() {
    let err = serde_json::from_str::<ClusterSpec>(
        r#"{"disaggregate": {"prefill": {"tp": 1, "pp": 1, "dp": 2},
            "decode": {"tp": 1, "pp": 1, "dp": 2}, "bogus": 1}}"#,
    )
    .expect_err("unknown key under disaggregate must fail")
    .to_string();
    assert!(
        err.contains("cluster.disaggregate") && err.contains("bogus"),
        "error must name the dotted context and the offending key: {err}"
    );

    let err = serde_json::from_str::<ClusterSpec>(
        r#"{"disaggregate": {"prefill": {"tp": 1, "pp": 1, "dp": 2}}}"#,
    )
    .expect_err("a disaggregate section without a decode pool must fail")
    .to_string();
    assert!(
        err.contains("decode"),
        "error must name the missing pool: {err}"
    );

    let err = serde_json::from_str::<ClusterSpec>(
        r#"{"disaggregate": {"prefill": {"tp": 1, "pp": 1, "dp": 2, "zz": 0},
            "decode": {"tp": 1, "pp": 1, "dp": 2}}}"#,
    )
    .expect_err("unknown key inside a pool plan must fail")
    .to_string();
    assert!(
        err.contains("cluster.disaggregate.prefill") && err.contains("zz"),
        "error must name the pool's dotted context: {err}"
    );
}

/// The dotted sweep paths under `cluster.disaggregate` validate against
/// the schema key tree. The probe document lists a *valid* disagg axis
/// first and a bogus one second: `run_sweep` validates axes in order
/// and reports the first failure, so an error naming only the bogus
/// axis proves the valid paths passed — without running a grid point.
#[test]
fn disaggregate_sweep_paths_validate() {
    let mk = |axes: &str| -> serde::Value {
        serde_json::from_str(&format!(
            r#"{{"name": "probe", "model": {{"zoo": "llama13"}},
                 "sweep": {{"command": "compile", "axes": {axes}}}}}"#
        ))
        .expect("probe document is valid JSON")
    };

    for good in [
        "cluster.disaggregate.prefill.tp",
        "cluster.disaggregate.prefill.pp",
        "cluster.disaggregate.decode.dp",
        "cluster.disaggregate.chunk_tokens",
        "cluster.disaggregate.shared_chips",
    ] {
        let doc = mk(&format!(
            r#"[{{"path": "{good}", "values": [1]}},
                {{"path": "cluster.disaggregate.nope", "values": [1]}}]"#
        ));
        let err = run_sweep(&doc, 1)
            .expect_err("the bogus axis must fail")
            .to_string();
        assert!(
            err.contains("cluster.disaggregate.nope") && !err.contains(good),
            "only the bogus axis may be rejected (probing `{good}`): {err}"
        );
        assert!(
            err.contains("prefill") && err.contains("chunk_tokens"),
            "the error must list the valid keys at that level: {err}"
        );
    }

    // Descending through a leaf is caught too.
    let doc = mk(r#"[{"path": "cluster.disaggregate.chunk_tokens.deeper", "values": [1]}]"#);
    let err = run_sweep(&doc, 1)
        .expect_err("leaf descent must fail")
        .to_string();
    assert!(
        err.contains("cannot descend"),
        "leaf descent needs its own diagnostic: {err}"
    );
}
