//! Baseline-ordering invariant (the paper's Fig. 6 sanity relation):
//! on any workload,
//!
//! ```text
//! Ideal <= Elk-Full <= Elk-Dyn <= Basic
//!          Elk-Full <= Static  <= Basic
//! ```
//!
//! Ideal is a contention-free roofline so nothing beats it; Elk-Full
//! only adds reordering on top of Elk-Dyn's search space; Static and
//! Basic progressively give up preload-space tuning and lookahead.
//! Each comparison carries a 2% modeling slack: the designs share the
//! cost model, but tie-breaking inside the search can legitimately
//! land within noise of each other.

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;

const SLACK: f64 = 1.02;

fn latencies(cfg: &TransformerConfig, wl: Workload) -> [f64; 5] {
    let graph = cfg.build(wl, 4);
    let runner = DesignRunner::new(presets::ipu_pod4());
    let catalog = runner.catalog(&graph).expect("catalog");
    let mut out = [0.0; 5];
    for (slot, design) in [
        Design::Ideal,
        Design::ElkFull,
        Design::ElkDyn,
        Design::Static,
        Design::Basic,
    ]
    .into_iter()
    .enumerate()
    {
        let outcome = runner
            .run(design, &graph, &catalog, &SimOptions::default())
            .unwrap_or_else(|e| panic!("{design} failed: {e:?}"));
        assert_eq!(
            outcome.report.capacity_violations, 0,
            "{design} produced capacity violations"
        );
        out[slot] = outcome.report.total.as_secs();
    }
    out
}

fn assert_ordered(tag: &str, l: [f64; 5], static_beats_basic: bool) {
    let [ideal, full, dyn_, static_, basic] = l;
    assert!(
        ideal <= full * SLACK,
        "{tag}: Ideal {ideal} > Elk-Full {full}"
    );
    assert!(
        full <= dyn_ * SLACK,
        "{tag}: Elk-Full {full} > Elk-Dyn {dyn_}"
    );
    assert!(
        full <= static_ * SLACK,
        "{tag}: Elk-Full {full} > Static {static_}"
    );
    assert!(
        dyn_ <= basic * SLACK,
        "{tag}: Elk-Dyn {dyn_} > Basic {basic}"
    );
    if static_beats_basic {
        assert!(
            static_ <= basic * SLACK,
            "{tag}: Static {static_} > Basic {basic}"
        );
    }
}

#[test]
fn decode_workload_respects_fig6_ordering() {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    assert_ordered(
        "llama2-13b/decode",
        latencies(&cfg, Workload::decode(16, 512)),
        true,
    );
}

#[test]
fn prefill_workload_respects_fig6_ordering() {
    let mut cfg = zoo::opt_30b();
    cfg.layers = 2;
    // Prefill is compute-bound: Static's reserved preload budget buys
    // nothing and can shave its execution plans, so Static vs Basic is
    // not guaranteed there — only the Elk chain is.
    assert_ordered(
        "opt-30b/prefill",
        latencies(&cfg, Workload::prefill(4, 256)),
        false,
    );
}
