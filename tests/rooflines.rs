//! Physical lower bounds: no design may beat the HBM or compute
//! rooflines, and the design ordering of §6.2 must hold under memory
//! pressure.

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;

fn stressed_graph() -> ModelGraph {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 4;
    cfg.build(Workload::decode(32, 4096), 4)
}

#[test]
fn no_design_beats_the_rooflines() {
    let system = presets::ipu_pod4();
    let runner = DesignRunner::new(system.clone());
    let graph = stressed_graph();
    let catalog = runner.catalog(&graph).expect("catalog");

    let hbm_bound = system
        .hbm
        .total_bandwidth()
        .transfer_time(graph.total_hbm_load());
    // Compute bound at the (higher) matmul rate with perfect efficiency.
    let compute_bound = graph.total_flops() / system.chip.matmul_rate();

    for design in Design::ALL {
        let out = runner
            .run(design, &graph, &catalog, &SimOptions::default())
            .expect("run");
        assert!(
            out.report.total >= hbm_bound * 0.95,
            "{design} beat the HBM roofline: {} < {}",
            out.report.total,
            hbm_bound
        );
        assert!(
            out.report.total >= compute_bound,
            "{design} beat the compute roofline"
        );
        assert!(out.report.hbm_util <= 1.0 + 1e-9);
        assert!(out.report.noc_util <= 1.0 + 1e-9);
    }
}

#[test]
fn design_ordering_under_memory_pressure() {
    let system = presets::ipu_pod4();
    let runner = DesignRunner::new(system);
    let graph = stressed_graph();
    let outs = runner
        .run_all(&graph, &SimOptions::default())
        .expect("run all");
    let t = |d: Design| {
        outs.iter()
            .find(|o| o.design == d)
            .unwrap()
            .report
            .total
            .as_secs()
    };
    let slack = 1.02;
    assert!(t(Design::Ideal) <= t(Design::ElkFull) * slack);
    assert!(t(Design::ElkFull) <= t(Design::ElkDyn) * slack);
    assert!(t(Design::ElkFull) <= t(Design::Static) * slack);
    assert!(t(Design::ElkFull) <= t(Design::Basic) * slack);
    // At seq 4096 the fixed split visibly hurts Static (Fig. 17 shape).
    assert!(
        t(Design::Static) > t(Design::ElkFull) * 1.05,
        "Static {} vs ELK-Full {}",
        t(Design::Static),
        t(Design::ElkFull)
    );
}

#[test]
fn elk_tracks_ideal_closely_when_memory_is_comfortable() {
    // §6.2: ELK achieves ~94% of the ideal roofline on average.
    let system = presets::ipu_pod4();
    let runner = DesignRunner::new(system);
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 4;
    let graph = cfg.build(Workload::decode(32, 2048), 4);
    let catalog = runner.catalog(&graph).expect("catalog");
    let full = runner
        .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
        .expect("full");
    let ideal = runner
        .run(Design::Ideal, &graph, &catalog, &SimOptions::default())
        .expect("ideal");
    let ratio = ideal.report.total / full.report.total;
    assert!(
        ratio > 0.85,
        "ELK-Full only reached {:.1}% of Ideal",
        ratio * 100.0
    );
}

#[test]
fn faster_hbm_never_hurts_elk() {
    let base = DesignRunner::new(presets::ipu_pod4());
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 3;
    let graph = cfg.build(Workload::decode(16, 2048), 4);
    let catalog = base.catalog(&graph).expect("catalog");
    let mut last = f64::INFINITY;
    for tbps in [4.0f64, 8.0, 16.0] {
        let runner = base.with_system(
            base.system()
                .with_total_hbm_bandwidth(ByteRate::tib_per_sec(tbps)),
        );
        let out = runner
            .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
            .expect("run");
        let t = out.report.total.as_secs();
        assert!(
            t <= last * 1.02,
            "latency increased with faster HBM: {t} vs {last} at {tbps} TB/s"
        );
        last = t;
    }
}
