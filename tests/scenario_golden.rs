//! Golden guarantees of the scenario layer:
//!
//! 1. every file in `scenarios/` parses under the strict schema;
//! 2. `scenarios/paper_default.json` resolves to the *exact* hardcoded
//!    paper setup (preset system, zoo model, default workload) — the
//!    spec layer adds no drift;
//! 3. compiling through the spec path produces a byte-identical
//!    `SimReport` to the equivalent preset-path run, and its total
//!    matches the constant pinned in `golden_report.rs`;
//! 4. `elk sweep` output is byte-identical at `--threads 1` vs `8`.

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;
use elk::spec::spec::SystemSpec;
use elk::spec::sweep::set_path;
use elk::spec::{run_sweep, runner, ScenarioSpec};

fn read_scenario(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn every_checked_in_scenario_parses() {
    let dir = format!("{}/scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|ext| ext != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable scenario");
        let spec =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!spec.name.is_empty());
        // Every scenario must build its system and model — a file that
        // parses but names an unknown preset/alias is still broken.
        spec.system.to_system().expect("system builds");
        spec.model.resolve().expect("model resolves");
        seen += 1;
    }
    assert!(
        seen >= 7,
        "expected the checked-in scenario set, saw {seen}"
    );
}

#[test]
fn paper_default_matches_the_hardcoded_paper_setup() {
    let spec = ScenarioSpec::from_json(&read_scenario("paper_default.json")).expect("parses");
    assert_eq!(spec.system, SystemSpec::Preset("ipu_pod4".into()));
    assert_eq!(spec.system.to_system().unwrap(), presets::ipu_pod4());

    let elk::spec::ResolvedModel::Llm(model) = spec.model.resolve().unwrap() else {
        panic!("paper default serves a dense LLM");
    };
    assert_eq!(model, zoo::llama2_13b());

    assert_eq!(
        spec.workload.to_workload().unwrap(),
        Workload::decode(32, 2048)
    );
    assert_eq!(
        spec.workload.shards_for(&presets::ipu_pod4()).unwrap(),
        4,
        "defaults to one shard per chip"
    );
    assert_eq!(spec.compiler.design, vec![Design::ElkFull]);
}

/// The byte-identity acceptance check, doctest-sized: the paper-default
/// scenario with the model cut to 2 layers and the workload shrunk to
/// the golden-report shape must compile to the byte-identical
/// `SimReport` the preset path produces — and that report's total is
/// the constant `golden_report.rs` pins, so scenario path ≡ preset
/// path ≡ pinned history.
#[test]
fn paper_default_compiles_byte_identical_to_the_preset_path() {
    // Shrink via the sweep override machinery, which is exactly what
    // `elk sweep` does to a grid point.
    let mut doc: serde::Value =
        serde_json::from_str(&read_scenario("paper_default.json")).expect("valid JSON");
    set_path(&mut doc, "model.layers", serde::Value::U64(2)).unwrap();
    set_path(&mut doc, "workload.batch", serde::Value::U64(16)).unwrap();
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("still a valid scenario");

    // Spec path.
    let report = runner::run_compile(&spec).expect("spec path compiles");
    assert_eq!(report.designs.len(), 1);
    let spec_sim = &report.designs[0].report;

    // Preset path: the same engine calls, written out by hand.
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(16, 512), 4);
    let runner_hw = DesignRunner::new(presets::ipu_pod4()).with_threads(1);
    let catalog = runner_hw.catalog(&graph).expect("catalog");
    let outcome = runner_hw
        .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
        .expect("preset path compiles");

    assert_eq!(
        serde_json::to_string(spec_sim).expect("serialize"),
        serde_json::to_string(&outcome.report).expect("serialize"),
        "spec-path SimReport must be byte-identical to the preset path"
    );

    // Tie to the pinned golden constant (same tolerance as
    // golden_report.rs).
    let want = 1.931_976_061_036_663_2e-4;
    let got = spec_sim.total.as_secs();
    assert!(
        (got - want).abs() <= 1e-9 * want,
        "scenario-path total {got:?} drifted from the pinned golden value {want:?}"
    );
}

/// `elk sweep --threads 1` vs `--threads 8` on the checked-in sweep
/// scenario (grid shrunk to stay debug-test-sized) must emit identical
/// bytes.
#[test]
fn sweep_scenario_is_thread_count_invariant() {
    let mut doc: serde::Value =
        serde_json::from_str(&read_scenario("sweep_batch.json")).expect("valid JSON");
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    set_path(
        &mut doc,
        "sweep.axes",
        serde_json::from_str(r#"[{"path": "workload.batch", "values": [8, 16]}]"#).unwrap(),
    )
    .unwrap();

    let seq = run_sweep(&doc, 1).expect("sweep @1");
    let par = run_sweep(&doc, 8).expect("sweep @8");
    assert_eq!(seq.points.len(), 2);
    assert_eq!(
        serde_json::to_string(&seq).expect("serialize"),
        serde_json::to_string(&par).expect("serialize"),
        "sweep report must be byte-identical at any thread count"
    );
    // And each point really did run both designs of the base scenario.
    let point = &seq.points[0];
    let designs = point.report.get("designs").expect("compile report");
    let serde::Value::Seq(designs) = designs else {
        panic!("designs is an array");
    };
    assert_eq!(designs.len(), 2, "basic + elk_full from the base file");
}

/// `elk serve`/`elk cluster` on a model the engine cannot batch (MoE)
/// exit 0 but must leave a structured `*.skipped.json` marker — a
/// results directory where "skipped by design" and "never ran" look
/// identical is a silent-failure trap.
#[test]
fn moe_skip_writes_a_structured_marker() {
    let out = std::env::temp_dir().join(format!("elk-skip-marker-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let scenario = format!("{}/scenarios/moe_mixtral.json", env!("CARGO_MANIFEST_DIR"));
    for command in ["serve", "cluster"] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_elk"))
            .args([command, &scenario, "--out"])
            .arg(&out)
            .output()
            .expect("spawn elk");
        assert!(
            output.status.success(),
            "`elk {command}` on MoE must exit 0"
        );
        let marker = out.join(format!("moe_mixtral.{command}.skipped.json"));
        let text = std::fs::read_to_string(&marker)
            .unwrap_or_else(|e| panic!("{}: {e}", marker.display()));
        let v: serde::Value = serde_json::from_str(&text).expect("marker parses");
        assert_eq!(v.get("skipped"), Some(&serde::Value::Bool(true)));
        assert_eq!(
            v.get("command"),
            Some(&serde::Value::Str(command.to_string()))
        );
        assert_eq!(
            v.get("scenario"),
            Some(&serde::Value::Str("moe_mixtral".to_string()))
        );
        assert!(
            v.get("reason")
                .is_some_and(|r| matches!(r, serde::Value::Str(s) if !s.is_empty())),
            "marker must say why the run was skipped"
        );
    }
    let _ = std::fs::remove_dir_all(&out);
}
