//! Property tests for the serving engines' conservation invariants on
//! the shared `elk-sim-core` event kernel:
//!
//! * every arrival produces exactly one completion — no request is
//!   dropped or double-completed, whatever the trace shape;
//! * per-request timelines are causal: `arrival <= first_token <=
//!   completion`, and nothing outlives the reported makespan;
//! * the merged queue-depth transition log is monotone in time, and
//!   integrating it reproduces the reported time-weighted mean;
//! * under disaggregation, every arrival prefills exactly once, hands
//!   off exactly once, and decodes exactly once, with the handoff
//!   instant equal to the first token and every byte priced by the
//!   KV-handoff formula;
//! * under multi-tenant admission control, every arrival gets exactly
//!   one disposition (admitted, rejected, or deferred), admitted and
//!   deferred requests complete exactly once, rejected requests never
//!   reach a group's step log, the per-tenant slices sum back to the
//!   whole-run totals, and the token bucket never grants more credit
//!   than its burst plus simulated-time refill.
//!
//! One simulator instance is shared across all proptest cases (the
//! plan cache makes repeated runs cheap); the length distributions are
//! kept inside one coarse bucket ladder so only a handful of distinct
//! step shapes ever compile.

use std::sync::{Mutex, OnceLock};

use elk::baselines::Design;
use elk::cluster::{
    kv_handoff_bytes, AutoscaleConfig, AutoscaleServingSim, ClusterServeConfig, ClusterServingSim,
    DisaggConfig, DisaggServingSim, ParallelismPlan, ScaleEvent, ScaleEventKind, TenantServingSim,
};
use elk::prelude::*;
use elk::serve::{
    RequestOutcome, RouterPolicy, ShedPolicy, SloConfig, TenancyConfig, TenantClass, TokenBucket,
};
use proptest::prelude::*;

/// Serving dynamics are independent of layer count; two layers keep
/// compiles doctest-sized.
fn model() -> TransformerConfig {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    cfg
}

fn batch() -> BatchConfig {
    BatchConfig {
        max_batch: 8,
        max_prefill_tokens: 2048,
        seq_buckets: SeqBuckets::new(256, 2048),
        bucket_batch: true,
    }
}

fn trace(seed: u64, requests: usize, rate_rps: f64) -> RequestTrace {
    TraceConfig {
        seed,
        requests,
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt_len: LengthDist::Uniform { lo: 200, hi: 700 },
        output_len: LengthDist::Uniform { lo: 2, hi: 12 },
    }
    .generate()
}

/// The replica engine, shared so the plan cache persists across cases.
fn serving_sim() -> &'static Mutex<ServingSim> {
    static SIM: OnceLock<Mutex<ServingSim>> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut cfg = ServeConfig::new(model(), 2).with_replicas(2);
        cfg.batch = batch();
        Mutex::new(ServingSim::new(presets::ipu_pod4(), cfg))
    })
}

/// The routed cluster engine, likewise shared.
fn cluster_sim() -> &'static Mutex<ClusterServingSim> {
    static SIM: OnceLock<Mutex<ClusterServingSim>> = OnceLock::new();
    SIM.get_or_init(|| {
        let config = ClusterServeConfig {
            batch: batch(),
            ..ClusterServeConfig::new(model(), ParallelismPlan::new(1, 1, 2))
        };
        Mutex::new(ClusterServingSim::new(presets::ipu_pod4(), config).expect("pod4 plan"))
    })
}

/// The elastic-fleet engine, likewise shared. Aggressive thresholds
/// (spin up at one queued request, 50 ms control ticks) so short
/// proptest traces actually exercise spin-up and drain-down.
fn autoscale_sim() -> &'static Mutex<AutoscaleServingSim> {
    static SIM: OnceLock<Mutex<AutoscaleServingSim>> = OnceLock::new();
    SIM.get_or_init(|| {
        let config = ClusterServeConfig {
            batch: batch(),
            ..ClusterServeConfig::new(model(), ParallelismPlan::new(1, 1, 1))
        };
        let auto = AutoscaleConfig {
            min_groups: 1,
            max_groups: 3,
            interval: Seconds::from_millis(50.0),
            up_queue_depth: 1.0,
            down_queue_depth: 0.25,
            slo_target: 0.9,
            cold_start_steps: 10.0,
        };
        Mutex::new(
            AutoscaleServingSim::new(presets::ipu_pod4(), config, auto).expect("pod4 autoscale"),
        )
    })
}

/// The disaggregated prefill/decode engine, likewise shared. Disjoint
/// pools (two prefill groups feeding two decode groups) with chunked
/// prefill, so every run exercises KV handoffs, chunk accounting, and
/// routing at both tiers.
fn disagg_sim() -> &'static Mutex<DisaggServingSim> {
    static SIM: OnceLock<Mutex<DisaggServingSim>> = OnceLock::new();
    SIM.get_or_init(|| {
        let config = DisaggConfig {
            batch: batch(),
            chunk_tokens: 256,
            ..DisaggConfig::new(
                model(),
                ParallelismPlan::new(1, 1, 2),
                ParallelismPlan::new(1, 1, 2),
            )
        };
        Mutex::new(DisaggServingSim::new(presets::ipu_pod4(), config).expect("pod4 disagg"))
    })
}

/// A two-class ladder under pressure: the premium tenant is never
/// limited, everyone else shares a tight rate limit and is sheddable
/// past a low queue-depth threshold, so short overload traces actually
/// exercise rejection (or deferral, per `policy`).
fn tenancy_config(policy: ShedPolicy) -> TenancyConfig {
    TenancyConfig {
        classes: vec![
            TenantClass::named("premium"),
            TenantClass {
                priority: 16,
                sheddable: true,
                rate_rps: Some(50.0),
                burst: 2,
                slo: SloConfig {
                    ttft: Seconds::from_millis(400.0),
                    tpot: Seconds::from_millis(60.0),
                },
                ..TenantClass::named("best_effort")
            },
        ],
        tenants: vec![("t0".to_string(), "premium".to_string())],
        default_class: "best_effort".to_string(),
        shed_queue_depth: Some(1.0),
        shed_policy: policy,
        ..TenancyConfig::default()
    }
}

/// The multi-tenant engines (one per shed policy), likewise shared.
fn tenancy_sim(policy: ShedPolicy) -> &'static Mutex<TenantServingSim> {
    static REJECT: OnceLock<Mutex<TenantServingSim>> = OnceLock::new();
    static DEFER: OnceLock<Mutex<TenantServingSim>> = OnceLock::new();
    let cell = match policy {
        ShedPolicy::Reject => &REJECT,
        ShedPolicy::Defer => &DEFER,
    };
    cell.get_or_init(|| {
        let config = ClusterServeConfig {
            batch: batch(),
            ..ClusterServeConfig::new(model(), ParallelismPlan::new(1, 1, 2))
        };
        Mutex::new(
            TenantServingSim::new(presets::ipu_pod4(), config, tenancy_config(policy))
                .expect("pod4 tenancy"),
        )
    })
}

/// Round-robin tenant tags: `t0` (premium), `t1`, `t2` (best-effort).
fn tenant_tags(requests: usize) -> Vec<String> {
    (0..requests).map(|i| format!("t{}", i % 3)).collect()
}

/// Whether `gid` was serving-eligible at instant `t` according to the
/// scale-event log: inside a `[Ready, Down)` interval. Boundary
/// instants accept either ordering — an arrival and a drain decision
/// at the same timestamp are both legal — but a group whose `Ready`
/// lies strictly in the future is never eligible, which is exactly the
/// "no request routed before cold-start finishes" invariant.
fn group_ready_at(transitions: &[ScaleEvent], gid: usize, t: Seconds) -> bool {
    let mut before = false; // state from events strictly before t
    let mut at = false; // state including events at t
    for ev in transitions.iter().filter(|ev| ev.group == gid) {
        if ev.time > t {
            break;
        }
        let state = match ev.kind {
            ScaleEventKind::Ready => Some(true),
            ScaleEventKind::Down | ScaleEventKind::Off => Some(false),
            ScaleEventKind::Up => None,
        };
        if let Some(s) = state {
            if ev.time < t {
                before = s;
            }
            at = s;
        }
    }
    before || at
}

/// Shared timeline checks for both engines' reports (panics on
/// violation, like the shim's `prop_assert*`).
fn check_conservation(
    requests: usize,
    completed: usize,
    makespan: Seconds,
    outcomes: &[RequestOutcome],
    queue_depth: &[(Seconds, usize)],
    mean_queue_depth: f64,
    max_queue_depth: usize,
) {
    // Every arrival completes exactly once: the outcome vector is in
    // trace order and each slot is filled by construction, so length
    // and completion count carry the whole invariant.
    assert_eq!(completed, requests, "every arrival must complete");
    assert_eq!(outcomes.len(), requests);
    for o in outcomes {
        assert!(o.arrival <= o.first_token, "prefill cannot precede arrival");
        assert!(
            o.first_token <= o.completion,
            "decode cannot precede prefill"
        );
        assert!(o.completion <= makespan, "nothing outlives the makespan");
        assert!(o.output_len >= 1);
    }
    // The merged transition log is time-monotone, and its peak matches
    // the reported max depth.
    let mut last = Seconds::ZERO;
    let mut peak = 0usize;
    for &(t, depth) in queue_depth {
        assert!(t >= last, "queue transitions must be time-sorted");
        last = t;
        peak = peak.max(depth);
    }
    assert_eq!(peak, max_queue_depth);
    assert!(mean_queue_depth >= 0.0);
    assert!(mean_queue_depth <= max_queue_depth as f64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Replica engine: conservation holds for any seed, load, and size.
    #[test]
    fn serving_engine_conserves_requests(
        seed in 0u64..1000,
        requests in 1usize..40,
        rate in 50u32..600,
    ) {
        let t = trace(seed, requests, f64::from(rate));
        let report = serving_sim()
            .lock()
            .expect("sim lock")
            .run(Design::ElkFull, &t)
            .expect("serving run succeeds");
        check_conservation(
            requests,
            report.completed,
            report.makespan,
            &report.outcomes,
            &report.queue_depth,
            report.mean_queue_depth,
            report.max_queue_depth,
        );
    }

    // Routed cluster engine: the same invariants hold under every
    // router policy, and each request lands on a real group.
    #[test]
    fn cluster_engine_conserves_requests(
        seed in 0u64..1000,
        requests in 1usize..30,
        policy_idx in 0usize..3,
    ) {
        let t = trace(seed, requests, 200.0);
        let policy = RouterPolicy::all()[policy_idx];
        let report = cluster_sim()
            .lock()
            .expect("sim lock")
            .run(Design::ElkFull, policy, &t)
            .expect("cluster run succeeds");
        check_conservation(
            requests,
            report.completed,
            report.makespan,
            &report.outcomes,
            &report.queue_depth,
            report.mean_queue_depth,
            report.max_queue_depth,
        );
        prop_assert_eq!(
            report.per_group_requests.iter().sum::<usize>(),
            requests,
            "routing conserves requests across groups"
        );
        for o in &report.outcomes {
            prop_assert!(o.replica < report.per_group_requests.len());
        }
    }

    // Disaggregated engine: every arrival prefills exactly once (chunk
    // accounting sums back to the prompt), hands off exactly once, and
    // decodes exactly once; the per-request timeline threads
    // `arrival <= prefill_done <= handoff_done = first_token <=
    // completion`; routing conserves requests at both tiers; and the
    // handoff and queue transition logs are time-sorted.
    #[test]
    fn disagg_engine_conserves_requests(
        seed in 0u64..1000,
        requests in 1usize..30,
        policy_idx in 0usize..3,
    ) {
        let t = trace(seed, requests, 200.0);
        let policy = RouterPolicy::all()[policy_idx];
        let report = disagg_sim()
            .lock()
            .expect("sim lock")
            .run(Design::ElkFull, policy, &t)
            .expect("disagg run succeeds");
        check_conservation(
            requests,
            report.completed,
            report.makespan,
            &report.outcomes,
            &report.queue_depth,
            report.prefill_mean_queue_depth,
            report.prefill_max_queue_depth,
        );

        // Exactly one handoff per arrival, each with a distinct id.
        prop_assert_eq!(report.handoffs.len(), requests);
        let mut ids: Vec<u64> = report.handoffs.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), requests, "handoff ids must be unique");

        // Chunked prefill conserves prompt tokens exactly: however the
        // budget slices them, the chunks sum back to each prompt.
        prop_assert_eq!(
            report.prefill_tokens,
            t.requests.iter().map(|r| r.prompt_len).sum::<u64>()
        );

        // Per-request causality across the handoff, joined by id: the
        // transfer starts when prefill ends, and its completion IS the
        // first token the decode pool can stream.
        for h in &report.handoffs {
            let o = report
                .outcomes
                .iter()
                .find(|o| o.id == h.id)
                .expect("every handoff joins an outcome");
            prop_assert!(o.arrival <= h.prefill_done, "prefill precedes arrival");
            prop_assert!(h.prefill_done <= h.handoff_done, "transfer runs backwards");
            prop_assert_eq!(h.handoff_done, o.first_token, "handoff is the first token");
            prop_assert!(h.from < report.per_prefill_group_requests.len());
            prop_assert_eq!(h.to, o.replica, "handoff target serves the decode");
        }
        let mut last = Seconds::ZERO;
        for h in &report.handoffs {
            prop_assert!(h.handoff_done >= last, "handoff log must be time-sorted");
            last = h.handoff_done;
        }

        // Both tiers' routing conserves requests.
        prop_assert_eq!(
            report.per_prefill_group_requests.iter().sum::<usize>(),
            requests,
            "prefill routing conserves requests"
        );
        prop_assert_eq!(
            report.per_decode_group_requests.iter().sum::<usize>(),
            requests,
            "decode routing conserves requests"
        );

        // Every KV byte moved is priced by the handoff formula, and the
        // report total is exactly the sum of the per-handoff records.
        let expect: Bytes = t
            .requests
            .iter()
            .map(|r| kv_handoff_bytes(&model(), r.prompt_len))
            .sum();
        prop_assert_eq!(report.kv_moved, expect);
        prop_assert_eq!(
            report.kv_moved,
            report.handoffs.iter().map(|h| h.bytes).sum::<Bytes>()
        );

        // Decode-tier queue stats stay sane even though the merged
        // transition log reports the prefill tier.
        prop_assert!(report.decode_mean_queue_depth >= 0.0);
        prop_assert!(
            report.decode_mean_queue_depth <= report.decode_max_queue_depth as f64
        );
    }

    // Elastic fleet: conservation holds across spin-up and drain-down,
    // no request is ever routed to a group whose cold start has not
    // finished, and the scale-event log is time-monotone.
    #[test]
    fn autoscale_engine_conserves_requests_across_scaling(
        seed in 0u64..1000,
        requests in 1usize..30,
        rate in 50u32..900,
    ) {
        let t = trace(seed, requests, f64::from(rate));
        let report = autoscale_sim()
            .lock()
            .expect("sim lock")
            .run(Design::ElkFull, &t)
            .expect("autoscale run succeeds");
        check_conservation(
            requests,
            report.completed,
            report.makespan,
            &report.outcomes,
            &report.queue_depth,
            report.mean_queue_depth,
            report.max_queue_depth,
        );
        prop_assert_eq!(
            report.per_group_requests.iter().sum::<usize>(),
            requests,
            "scaling conserves requests across groups"
        );

        // Scale events are time-monotone and stay inside the fleet.
        let mut last = Seconds::ZERO;
        for ev in &report.transitions {
            prop_assert!(ev.time >= last, "scale events must be time-sorted");
            last = ev.time;
            prop_assert!(ev.group < report.max_groups as usize);
            prop_assert!(ev.ready <= report.max_groups as usize);
        }
        prop_assert!(report.peak_groups >= report.min_groups as usize);
        prop_assert!(report.peak_groups <= report.max_groups as usize);

        // Routing respects readiness: every outcome's arrival falls in
        // a [Ready, Down) interval of the group that served it.
        for o in &report.outcomes {
            prop_assert!(
                group_ready_at(&report.transitions, o.replica, o.arrival),
                "request {} routed to group {} outside its ready window",
                o.id,
                o.replica
            );
        }

        // Chip-seconds stay inside the provisioning envelope (one chip
        // per group here: tp = pp = 1).
        prop_assert!(report.chip_seconds > 0.0);
        prop_assert!(
            report.chip_seconds
                <= report.makespan.as_secs() * report.max_groups as f64 + 1e-9,
            "chip-seconds {} exceed max_groups x makespan",
            report.chip_seconds
        );
    }

    // Multi-tenant engine: dispositions are disjoint and exhaustive,
    // admitted + deferred arrivals complete exactly once, rejected
    // arrivals never touch a group, and the per-tenant slices sum back
    // to the whole-run totals — under both shed policies and every
    // router.
    #[test]
    fn tenancy_engine_conserves_dispositions(
        seed in 0u64..1000,
        requests in 1usize..30,
        rate in 100u32..900,
        policy_idx in 0usize..3,
        shed_defer in any::<bool>(),
    ) {
        let t = trace(seed, requests, f64::from(rate));
        let tags = tenant_tags(requests);
        let shed = if shed_defer { ShedPolicy::Defer } else { ShedPolicy::Reject };
        let policy = RouterPolicy::all()[policy_idx];
        let report = tenancy_sim(shed)
            .lock()
            .expect("sim lock")
            .run(Design::ElkFull, policy, &t, &tags)
            .expect("tenancy run succeeds");

        // Every arrival gets exactly one disposition, and only the
        // admitted + deferred ones reach the engine and complete.
        prop_assert_eq!(
            report.admitted + report.rejected + report.deferred,
            requests,
            "dispositions must partition the arrivals"
        );
        let served = report.admitted + report.deferred;
        check_conservation(
            served,
            report.base.completed,
            report.base.makespan,
            &report.base.outcomes,
            &report.base.queue_depth,
            report.base.mean_queue_depth,
            report.base.max_queue_depth,
        );

        // Completions carry distinct trace ids — nothing double-serves
        // — and rejected arrivals never land in any group's step log:
        // the per-group routing counts sum to the served set alone.
        let mut ids: Vec<u64> = report.base.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), served, "completion ids must be unique");
        prop_assert!(ids.iter().all(|&id| id < requests as u64));
        prop_assert_eq!(
            report.base.per_group_requests.iter().sum::<usize>(),
            served,
            "rejected requests must never be routed to a group"
        );

        // Per-tenant slices are themselves conserved and sum back to
        // the whole-run totals; the fairness index stays in (0, 1].
        let mut arrivals = 0;
        let mut admitted = 0;
        let mut rejected = 0;
        let mut deferred = 0;
        for tr in &report.tenants {
            prop_assert_eq!(
                tr.admitted + tr.rejected + tr.deferred,
                tr.arrivals,
                "tenant {} dispositions must partition its arrivals",
                tr.tenant
            );
            prop_assert_eq!(tr.completed, tr.admitted + tr.deferred);
            prop_assert!(tr.slo_attainment >= 0.0 && tr.slo_attainment <= 1.0);
            arrivals += tr.arrivals;
            admitted += tr.admitted;
            rejected += tr.rejected;
            deferred += tr.deferred;
        }
        prop_assert_eq!(arrivals, requests);
        prop_assert_eq!(admitted, report.admitted);
        prop_assert_eq!(rejected, report.rejected);
        prop_assert_eq!(deferred, report.deferred);
        prop_assert!(
            report.jain_fairness > 0.0 && report.jain_fairness <= 1.0 + 1e-9,
            "jain index {} outside (0, 1]",
            report.jain_fairness
        );

        // The premium tenant is never limited or sheddable: all of its
        // arrivals are admitted outright.
        let premium = report.tenants.iter().find(|tr| tr.class == "premium");
        if let Some(premium) = premium {
            prop_assert_eq!(premium.admitted, premium.arrivals);
        }
    }

    // Token bucket: refill is driven only by the simulated clock, never
    // exceeds the burst capacity, only ever adds credit between takes,
    // and the grants over any horizon stay within burst + rate x time.
    #[test]
    fn token_bucket_refill_is_monotone_and_credit_bounded(
        rate in 1u32..200,
        burst in 1u64..8,
        deltas in prop::collection::vec(0.0f64..0.1, 1..40),
    ) {
        let mut bucket = TokenBucket::new(f64::from(rate), burst);
        let mut elapsed = 0.0;
        let mut granted = 0u64;
        for d in deltas {
            elapsed += d;
            let before = bucket.tokens();
            let taken = bucket.try_take(Seconds::new(elapsed));
            if taken {
                granted += 1;
            } else {
                // A failed take spends nothing, so the clock advance
                // can only have added credit.
                prop_assert!(bucket.tokens() >= before - 1e-12);
                prop_assert!(bucket.tokens() < 1.0);
            }
            prop_assert!(bucket.tokens() >= 0.0);
            prop_assert!(bucket.tokens() <= burst as f64);
            prop_assert!(
                granted as f64 <= burst as f64 + f64::from(rate) * elapsed + 1e-9,
                "granted {} exceeds the credit envelope",
                granted
            );
        }
    }
}

/// The limiter and the shedder actually engage on an overload trace —
/// the proptest invariants above hold vacuously if nothing is ever
/// rejected, so pin one deterministic case per policy where admission
/// control visibly fires (and, under `Defer`, deferred requests still
/// complete).
#[test]
fn tenancy_overload_sheds_and_deferred_requests_complete() {
    let t = trace(11, 24, 800.0);
    let tags = tenant_tags(24);
    let rejected = tenancy_sim(ShedPolicy::Reject)
        .lock()
        .expect("sim lock")
        .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &t, &tags)
        .expect("tenancy run succeeds");
    assert!(rejected.rejected > 0, "overload must trigger rejection");
    assert_eq!(
        rejected.base.completed,
        rejected.admitted + rejected.deferred
    );

    let deferred = tenancy_sim(ShedPolicy::Defer)
        .lock()
        .expect("sim lock")
        .run(Design::ElkFull, RouterPolicy::LeastOutstanding, &t, &tags)
        .expect("tenancy run succeeds");
    assert!(
        deferred.deferred > 0 || deferred.rejected > 0,
        "overload must trigger the shedder"
    );
    assert_eq!(
        deferred.base.completed,
        deferred.admitted + deferred.deferred,
        "deferred requests must still complete"
    );
}

/// Integrating the reported queue-depth transition log over the run
/// reproduces the reported time-weighted mean — the metric really is
/// depth x time area over simulated time, not a sample average (the
/// pre-kernel engines averaged per-step samples, which overweights
/// short decode steps).
#[test]
fn reported_mean_queue_depth_is_the_time_weighted_integral() {
    let mut cfg = ServeConfig::new(model(), 2); // one replica: one timeline
    cfg.batch = batch();
    let mut sim = ServingSim::new(presets::ipu_pod4(), cfg);
    let report = sim
        .run(Design::ElkFull, &trace(7, 30, 400.0))
        .expect("serving run succeeds");

    let mut area = 0.0;
    let mut prev_t = 0.0;
    let mut prev_d = 0.0;
    for &(t, depth) in &report.queue_depth {
        area += prev_d * (t.as_secs() - prev_t);
        prev_t = t.as_secs();
        prev_d = depth as f64;
    }
    area += prev_d * (report.makespan.as_secs() - prev_t);
    let want = area / report.makespan.as_secs();
    assert!(
        (report.mean_queue_depth - want).abs() < 1e-9,
        "reported {} vs integrated {}",
        report.mean_queue_depth,
        want
    );
    assert!(
        report.queue_depth.iter().any(|&(_, d)| d > 0),
        "the burst must actually queue"
    );
}
