//! Golden coverage for the observability export path, end to end
//! through the CLI: `elk serve`/`elk cluster`/`elk simulate` with
//! `--timeline` must emit Chrome-trace timelines (plus flat metrics)
//! that are **byte-identical at `--threads 1` vs `8`**, span the
//! compile pipeline, the event kernel, and per-request lanes in one
//! file, carry no wall-clock-smelling keys, and pass `elk validate`'s
//! structural trace-event check.

use std::path::{Path, PathBuf};
use std::process::Command;

use serde::Value;

fn scenario(name: &str) -> String {
    format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let out = std::env::temp_dir().join(format!("elk-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    out
}

/// Runs `elk <command> <scenario> --threads N --timeline ...` and
/// returns the raw bytes of the timeline and metrics files.
fn export_timeline(
    command: &str,
    scenario_file: &str,
    threads: u32,
    out: &Path,
) -> (String, String) {
    let timeline = out.join(format!("t{threads}.timeline.json"));
    let output = Command::new(env!("CARGO_BIN_EXE_elk"))
        .args([
            command,
            scenario_file,
            "--threads",
            &threads.to_string(),
            "--out",
        ])
        .arg(out)
        .arg("--timeline")
        .arg(&timeline)
        .output()
        .expect("spawn elk");
    assert!(
        output.status.success(),
        "`elk {command}` must exit 0: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let metrics = out.join(format!("t{threads}.metrics.json"));
    (
        std::fs::read_to_string(&timeline).expect("timeline emitted"),
        std::fs::read_to_string(&metrics).expect("metrics emitted"),
    )
}

/// Same recursive walk the report golden tests use: a deterministic
/// artifact must not contain wall-clock-smelling keys. Chrome-trace
/// `ts`/`dur` carry *simulated* microseconds and pass by construction.
fn assert_no_wall_clock_keys(v: &Value, path: &str) {
    const FORBIDDEN: &[&str] = &["wall", "elapsed", "timestamp", "time_ms", "unix_"];
    match v {
        Value::Map(entries) => {
            for (k, child) in entries {
                let key = k.to_ascii_lowercase();
                assert!(
                    !FORBIDDEN.iter().any(|f| key.contains(f)) && key != "now" && key != "date",
                    "wall-clock-smelling key {path}.{k} in a deterministic timeline"
                );
                assert_no_wall_clock_keys(child, &format!("{path}.{k}"));
            }
        }
        Value::Seq(items) => {
            for (i, child) in items.iter().enumerate() {
                assert_no_wall_clock_keys(child, &format!("{path}[{i}]"));
            }
        }
        _ => {}
    }
}

fn field<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The `traceEvents` array of a parsed timeline.
fn trace_events(timeline: &Value) -> &[Value] {
    let Value::Map(pairs) = timeline else {
        panic!("timeline is not an object");
    };
    let Some(Value::Seq(events)) = field(pairs, "traceEvents") else {
        panic!("timeline has no traceEvents array");
    };
    events
}

/// Track (thread) names, from the `thread_name` metadata events.
fn track_names(events: &[Value]) -> Vec<String> {
    events
        .iter()
        .filter_map(|ev| {
            let Value::Map(pairs) = ev else { return None };
            match (
                field(pairs, "ph"),
                field(pairs, "name"),
                field(pairs, "args"),
            ) {
                (Some(Value::Str(ph)), Some(Value::Str(name)), Some(Value::Map(args)))
                    if ph == "M" && name == "thread_name" =>
                {
                    match field(args, "name") {
                        Some(Value::Str(track)) => Some(track.clone()),
                        _ => None,
                    }
                }
                _ => None,
            }
        })
        .collect()
}

/// Event names of non-metadata events.
fn event_names(events: &[Value]) -> Vec<String> {
    events
        .iter()
        .filter_map(|ev| {
            let Value::Map(pairs) = ev else { return None };
            match (field(pairs, "ph"), field(pairs, "name")) {
                (Some(Value::Str(ph)), Some(Value::Str(name))) if ph != "M" => Some(name.clone()),
                _ => None,
            }
        })
        .collect()
}

/// One timeline check: export at `--threads 1` and `8`, demand byte
/// identity, then structural coverage of all three instrumented layers.
fn check_scenario(command: &str, file: &str, kernel_track: &str, tag: &str) {
    let out = fresh_dir(tag);
    let scenario_file = scenario(file);
    let t1 = export_timeline(command, &scenario_file, 1, &out);
    let t8 = export_timeline(command, &scenario_file, 8, &out);
    assert_eq!(
        t1, t8,
        "{file}: timeline + metrics must be byte-identical at --threads 1 vs 8"
    );

    let (timeline_text, metrics_text) = &t1;
    let timeline: Value = serde_json::from_str(timeline_text).expect("timeline parses");
    let metrics: Value = serde_json::from_str(metrics_text).expect("metrics parse");
    assert_no_wall_clock_keys(&timeline, "timeline");
    assert_no_wall_clock_keys(&metrics, "metrics");

    let events = trace_events(&timeline);
    assert!(!events.is_empty(), "{file}: timeline has events");
    let tracks = track_names(events);
    let has = |prefix: &str| tracks.iter().any(|t| t.starts_with(prefix));
    assert!(
        has("compile/"),
        "{file}: compile-pipeline lanes: {tracks:?}"
    );
    assert!(has(kernel_track), "{file}: kernel track: {tracks:?}");
    assert!(has("req/"), "{file}: per-request lanes: {tracks:?}");

    let names = event_names(events);
    for expected in ["enumerate", "order_search", "lower", "prefill"] {
        assert!(
            names.iter().any(|n| n == expected),
            "{file}: expected a `{expected}` event"
        );
    }

    // The files also pass the CLI's own structural validator.
    let output = Command::new(env!("CARGO_BIN_EXE_elk"))
        .arg("validate")
        .arg(&out)
        .output()
        .expect("spawn elk validate");
    assert!(
        output.status.success(),
        "`elk validate` over {}: {}",
        out.display(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("trace event(s)"),
        "validate recognized the timeline structurally: {stdout}"
    );
}

#[test]
fn serve_timeline_is_deterministic_and_spans_all_layers() {
    // serving_burst replays a bursty flat-pool trace: kernel events
    // land on per-replica tracks.
    check_scenario("serve", "serving_burst.json", "serve/replica", "serve");
}

#[test]
fn cluster_timeline_is_deterministic_and_spans_all_layers() {
    // tenants_overload drives the multi-tenant cluster engine: the
    // admission dispositions ride on the request lanes.
    check_scenario(
        "cluster",
        "tenants_overload.json",
        "tenancy/kernel",
        "cluster",
    );
}

#[test]
fn simulate_timeline_records_the_compile_pipeline() {
    let out = fresh_dir("simulate");
    let scenario_file = scenario("paper_all_designs.json");
    let t1 = export_timeline("simulate", &scenario_file, 1, &out);
    let t8 = export_timeline("simulate", &scenario_file, 8, &out);
    assert_eq!(t1, t8, "simulate timeline must be thread-count invariant");
    let timeline: Value = serde_json::from_str(&t1.0).expect("timeline parses");
    assert_no_wall_clock_keys(&timeline, "timeline");
    let tracks = track_names(trace_events(&timeline));
    assert!(
        tracks.iter().filter(|t| t.starts_with("compile/")).count() >= 2,
        "one compile lane per design: {tracks:?}"
    );
}

#[test]
fn observe_spec_section_drives_recording_without_the_flag() {
    // A scenario can opt in via its own `observe` section; the timeline
    // then derives to `<out>/<name>.timeline.json`.
    let out = fresh_dir("spec-observe");
    let text = std::fs::read_to_string(scenario("serving_burst.json")).expect("scenario");
    let mut doc: Value = serde_json::from_str(&text).expect("scenario parses");
    let Value::Map(pairs) = &mut doc else {
        panic!("scenario is an object")
    };
    pairs.push((
        "observe".to_string(),
        Value::Map(vec![("enable".to_string(), Value::Bool(true))]),
    ));
    let rewritten = out.join("observed.json");
    std::fs::create_dir_all(&out).expect("mkdir");
    std::fs::write(&rewritten, serde_json::to_string(&doc).expect("serialize")).expect("write");

    let output = Command::new(env!("CARGO_BIN_EXE_elk"))
        .arg("serve")
        .arg(&rewritten)
        .args(["--threads", "2", "--out"])
        .arg(&out)
        .output()
        .expect("spawn elk");
    assert!(
        output.status.success(),
        "`elk serve` must exit 0: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let timeline = out.join("serving_burst.timeline.json");
    let metrics = out.join("serving_burst.metrics.json");
    assert!(timeline.is_file(), "derived timeline path exists");
    assert!(metrics.is_file(), "derived metrics path exists");
}

#[test]
fn compile_rejects_the_timeline_flag() {
    let out = fresh_dir("reject");
    let output = Command::new(env!("CARGO_BIN_EXE_elk"))
        .args(["compile", &scenario("paper_default.json"), "--timeline"])
        .arg(out.join("t.json"))
        .args(["--out"])
        .arg(&out)
        .output()
        .expect("spawn elk");
    assert!(
        !output.status.success(),
        "`elk compile --timeline` is a usage error"
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--timeline"),
        "error names the flag"
    );
}
