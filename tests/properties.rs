//! Cross-crate property tests: randomized transformer architectures and
//! workloads must always produce feasible, rule-respecting plans.

use proptest::prelude::*;

use elk::baselines::{Design, DesignRunner};
use elk::cost::{AnalyticDevice, CostModel};
use elk::model::NormKind;
use elk::partition::Partitioner;
use elk::prelude::*;

fn arb_config() -> impl Strategy<Value = TransformerConfig> {
    (
        1u32..=3,                                       // layers
        prop::sample::select(vec![512u64, 1024, 2048]), // hidden
        prop::sample::select(vec![8u64, 16]),           // heads
        prop::sample::select(vec![1u64, 2, 4]),         // kv group divisor
        any::<bool>(),                                  // glu
        any::<bool>(),                                  // rope
    )
        .prop_map(
            |(layers, hidden, heads, kv_div, glu, rope)| TransformerConfig {
                name: format!("prop-{hidden}h{heads}"),
                layers,
                hidden,
                heads,
                kv_heads: (heads / kv_div).max(4),
                head_dim: hidden / heads,
                intermediate: hidden * 3,
                vocab: 8192,
                glu,
                norm: if glu { NormKind::Rms } else { NormKind::Layer },
                rope,
                post_norms: false,
            },
        )
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        prop::sample::select(vec![1u64, 4, 16]),
        prop::sample::select(vec![256u64, 1024]),
        any::<bool>(),
    )
        .prop_map(|(b, s, decode)| {
            if decode {
                Workload::decode(b, s)
            } else {
                Workload::prefill(b, s)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn every_plan_fits_sram(cfg in arb_config(), wl in arb_workload()) {
        let system = presets::ipu_pod4();
        let graph = cfg.build(wl, 4);
        let device = AnalyticDevice::of_chip(&system.chip);
        let partitioner = Partitioner::new(&system.chip, &device);
        for op in graph.iter().take(20) {
            for plan in partitioner.plans(op) {
                prop_assert!(plan.exec_space <= system.chip.usable_sram_per_core());
                prop_assert!(plan.cores_used <= system.chip.cores);
                // Preload frontier: strictly shrinking space, growing time.
                for w in plan.preload_plans.windows(2) {
                    prop_assert!(w[0].preload_space > w[1].preload_space);
                    prop_assert!(w[0].distribute_time <= w[1].distribute_time);
                }
            }
        }
    }

    #[test]
    fn compiled_plans_respect_all_rules(cfg in arb_config(), wl in arb_workload()) {
        let system = presets::ipu_pod4();
        let graph = cfg.build(wl, 4);
        let plan = Compiler::new(system.clone()).compile(&graph).expect("compile");
        prop_assert_eq!(plan.program.validate(), Ok(()));
        prop_assert_eq!(plan.estimate.capacity_violations, 0);
        let report = simulate(&plan.program, &system, &SimOptions::default());
        prop_assert_eq!(report.capacity_violations, 0);
        // Done-tag and sequencing rules.
        for (e, p) in report.exec_spans.iter().zip(&report.preload_spans) {
            prop_assert!(e.0 >= p.1);
        }
        for w in report.exec_spans.windows(2) {
            prop_assert!(w[1].0 >= w[0].1);
        }
        // Conservation: simulated DRAM traffic equals the program's.
        let expect: u64 = plan.program.specs.iter().map(|s| s.hbm_load.get()).sum();
        let got = report.hbm_bytes.get() as f64;
        prop_assert!((got - expect as f64).abs() <= 0.01 * expect as f64 + 1024.0);
    }

    #[test]
    fn ideal_is_a_lower_bound(cfg in arb_config()) {
        let system = presets::ipu_pod4();
        let graph = cfg.build(Workload::decode(8, 512), 4);
        let runner = DesignRunner::new(system);
        let catalog = runner.catalog(&graph).expect("catalog");
        let ideal = runner.run(Design::Ideal, &graph, &catalog, &SimOptions::default()).expect("ideal");
        let full = runner.run(Design::ElkFull, &graph, &catalog, &SimOptions::default()).expect("full");
        prop_assert!(ideal.report.total <= full.report.total * 1.02);
    }

    #[test]
    fn cost_model_is_positive_and_monotone_in_volume(
        m in 1u64..64, k in 8u64..2048, n in 1u64..256
    ) {
        let device = AnalyticDevice::of_chip(&presets::ipu_pod4().chip);
        let t1 = device.tile_time(&elk::cost::TileShape::matmul(m, k, n));
        let t2 = device.tile_time(&elk::cost::TileShape::matmul(m * 2, k, n));
        prop_assert!(t1 > Seconds::ZERO);
        prop_assert!(t2 >= t1);
        let l1 = device.link_time(Bytes::new(k * 100));
        let l2 = device.link_time(Bytes::new(k * 200));
        prop_assert!(l2 >= l1);
    }
}
