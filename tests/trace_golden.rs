//! Golden guarantees of the trace-replay path:
//!
//! 1. the checked-in `traces/golden_small.jsonl` is bit-for-bit what
//!    its generator recipe (`scenarios/trace_gen_golden.json`)
//!    produces — the generator cannot drift without the diff showing;
//! 2. replaying it through `elk serve` and `elk cluster` pins the
//!    TTFT/TPOT percentiles and `sim_events` exactly (f64 equality,
//!    not tolerance) — the whole serving stack is deterministic;
//! 3. the replay reports are byte-identical at `--threads 1` vs `8`;
//! 4. no report on the trace path carries a wall-clock field, and
//!    `elk trace gen` emits identical bytes on every run.

use elk::spec::{runner, ScenarioSpec};
use elk::trace::{LengthModel, RateShape, TraceFile, TraceGenConfig};
use serde::{Serialize, Value};

fn read_file(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn replay_spec() -> ScenarioSpec {
    ScenarioSpec::from_json(&read_file("scenarios/trace_replay_pin.json")).expect("spec parses")
}

/// The recipe in `scenarios/trace_gen_golden.json`, written out in
/// Rust: regenerating must reproduce the checked-in file bit for bit.
#[test]
fn golden_trace_regenerates_bit_for_bit() {
    let config = TraceGenConfig {
        seed: 7411,
        requests: 24,
        rate: RateShape::Diurnal {
            mean_rps: 60.0,
            amplitude: 0.5,
            period_s: 0.5,
        },
        prompt_len: LengthModel::HeavyTail {
            lo: 64,
            alpha: 1.3,
            cap: 1024,
        },
        output_len: LengthModel::Uniform { lo: 2, hi: 8 },
        tenants: 2,
    };
    let checked_in = read_file("traces/golden_small.jsonl");
    assert_eq!(
        config.generate().to_jsonl(),
        checked_in,
        "traces/golden_small.jsonl drifted from its generator recipe"
    );
    let parsed = TraceFile::parse(&checked_in).expect("golden trace parses");
    assert_eq!(parsed.len(), 24);
    assert_eq!(parsed.tenants().len(), 2);
}

/// Replaying the golden trace pins the serving percentiles exactly.
/// These constants are history: a change means the serving stack's
/// arithmetic changed, which must be a conscious decision.
#[test]
fn golden_replay_pins_serving_percentiles() {
    let spec = replay_spec();

    let serve = runner::run_serve(&spec).expect("serve replay");
    assert_eq!(serve.requests, 24, "the golden trace supplies the load");
    let d = &serve.designs[0];
    assert_eq!(d.completed, 24);
    assert_eq!(d.ttft.p99.as_secs(), 0.0031611267400116494);
    assert_eq!(d.tpot.p99.as_secs(), 0.0004295759388309569);
    assert_eq!(d.tpot.mean.as_secs(), 0.00016600104416672265);
    assert_eq!(d.sim_events, 159);
    assert_eq!(d.peak_event_queue_len, 24);

    let cluster = runner::run_cluster(&spec).expect("cluster replay");
    let rows = cluster.serving.as_ref().expect("cluster.serve is on");
    let row = &rows[0];
    assert_eq!(row.completed, 24);
    assert_eq!(row.ttft.p99.as_secs(), 0.00577555478165348);
    assert_eq!(row.tpot.p99.as_secs(), 0.0019366933630504402);
    assert_eq!(row.sim_events, 165);
    assert_eq!(row.peak_event_queue_len, 24);
}

/// The replay is byte-identical at any worker-thread count: the
/// cluster report exactly, the serve report up to the documented
/// plan-cache hit/miss split (normalized out before comparing).
#[test]
fn golden_replay_is_thread_count_invariant() {
    let mut at1 = replay_spec();
    at1.serving.threads = 1;
    at1.cluster.as_mut().expect("cluster section").threads = 1;
    let mut at8 = replay_spec();
    at8.serving.threads = 8;
    at8.cluster.as_mut().expect("cluster section").threads = 8;

    let cluster1 = runner::run_cluster(&at1).expect("cluster @1");
    let cluster8 = runner::run_cluster(&at8).expect("cluster @8");
    assert_eq!(
        serde_json::to_string(&cluster1).expect("serialize"),
        serde_json::to_string(&cluster8).expect("serialize"),
        "cluster replay must be byte-identical at any thread count"
    );

    let strip_cache = |report: &elk::spec::ServeReport| -> Value {
        let mut v = report.to_value();
        if let Value::Map(root) = &mut v {
            if let Some((_, Value::Seq(designs))) = root.iter_mut().find(|(k, _)| k == "designs") {
                for d in designs {
                    if let Value::Map(fields) = d {
                        fields.retain(|(k, _)| k != "cache");
                    }
                }
            }
        }
        v
    };
    let serve1 = runner::run_serve(&at1).expect("serve @1");
    let serve8 = runner::run_serve(&at8).expect("serve @8");
    assert_eq!(
        serde_json::to_string(&strip_cache(&serve1)).expect("serialize"),
        serde_json::to_string(&strip_cache(&serve8)).expect("serialize"),
        "serve replay must be thread-count invariant outside the cache split"
    );
}

/// Recursively asserts no key of `v` smells like wall-clock time.
/// `duration_s`/`makespan` are *simulated* time and stay legal;
/// `elapsed`/`wall`/`timestamp` would break replay determinism.
fn assert_no_wall_clock_keys(v: &Value, path: &str) {
    const FORBIDDEN: &[&str] = &["wall", "elapsed", "timestamp", "time_ms", "unix_"];
    match v {
        Value::Map(entries) => {
            for (k, child) in entries {
                let key = k.to_ascii_lowercase();
                assert!(
                    !FORBIDDEN.iter().any(|f| key.contains(f)) && key != "now" && key != "date",
                    "wall-clock-smelling key {path}.{k} in a deterministic report"
                );
                assert_no_wall_clock_keys(child, &format!("{path}.{k}"));
            }
        }
        Value::Seq(items) => {
            for (i, child) in items.iter().enumerate() {
                assert_no_wall_clock_keys(child, &format!("{path}[{i}]"));
            }
        }
        _ => {}
    }
}

/// `elk trace gen` and the trace-replay reports carry no wall-clock
/// fields, and generation is byte-deterministic run to run.
#[test]
fn trace_path_reports_carry_no_wall_clock_fields() {
    let out = std::env::temp_dir().join(format!("elk-trace-clock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let gen_scenario = format!(
        "{}/scenarios/trace_gen_golden.json",
        env!("CARGO_MANIFEST_DIR")
    );

    let mut emitted = Vec::new();
    for _ in 0..2 {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_elk"))
            .args(["trace", "gen", &gen_scenario, "--out"])
            .arg(&out)
            .output()
            .expect("spawn elk");
        assert!(output.status.success(), "`elk trace gen` must exit 0");
        emitted.push((
            std::fs::read_to_string(out.join("golden_small.trace.jsonl")).expect("jsonl emitted"),
            std::fs::read_to_string(out.join("golden_small.trace.json")).expect("report emitted"),
        ));
    }
    assert_eq!(
        emitted[0], emitted[1],
        "trace gen must be run-to-run deterministic"
    );

    let (jsonl, summary) = &emitted[0];
    TraceFile::parse(jsonl).expect("emitted trace parses under the strict schema");
    let summary: Value = serde_json::from_str(summary).expect("summary parses");
    assert_no_wall_clock_keys(&summary, "trace");

    // The replay reports — serve, cluster, and the elastic fleet —
    // obey the same contract.
    let spec = replay_spec();
    assert_no_wall_clock_keys(
        &runner::run_serve(&spec).expect("serve").to_value(),
        "serve",
    );
    assert_no_wall_clock_keys(
        &runner::run_cluster(&spec).expect("cluster").to_value(),
        "cluster",
    );
    let auto_spec = ScenarioSpec::from_json(&read_file("scenarios/autoscale_burst.json"))
        .expect("autoscale scenario parses");
    assert_no_wall_clock_keys(
        &runner::run_cluster(&auto_spec)
            .expect("autoscale cluster")
            .to_value(),
        "autoscale",
    );

    let _ = std::fs::remove_dir_all(&out);
}
