//! Golden guarantees of the cluster layer (acceptance checks of the
//! elk-cluster PR):
//!
//! 1. `scenarios/pod4_llama_tp_pp.json` (shrunk to test size via the
//!    sweep override machinery) auto-selects a `(tp, pp, dp)` plan and
//!    produces a `ClusterRunReport` with a per-stage timeline, bubble
//!    fraction, and scaling efficiency;
//! 2. the whole report — search included — is byte-identical at
//!    `threads = 1` vs `8`;
//! 3. a pinned `tp = pp = dp = 1` plan reproduces the single-chip
//!    `SimReport` total bit for bit (the cluster layer adds no drift);
//! 4. the router-comparison scenario serves every request under every
//!    policy, byte-identically across thread counts.

use elk::baselines::{Design, DesignRunner};
use elk::cluster::ParallelismPlan;
use elk::prelude::*;
use elk::spec::sweep::set_path;
use elk::spec::{runner, ScenarioSpec};

fn scenario_doc(name: &str) -> serde::Value {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    serde_json::from_str(&text).expect("valid scenario JSON")
}

fn shrunk_pod4(threads: u64) -> ScenarioSpec {
    let mut doc = scenario_doc("pod4_llama_tp_pp.json");
    set_path(&mut doc, "model.layers", serde::Value::U64(2)).unwrap();
    set_path(&mut doc, "workload.batch", serde::Value::U64(8)).unwrap();
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    set_path(&mut doc, "cluster.threads", serde::Value::U64(threads)).unwrap();
    serde::Deserialize::from_value(&doc).expect("still a valid scenario")
}

#[test]
fn pod4_scenario_auto_selects_a_plan_with_full_reporting() {
    let report = runner::run_cluster(&shrunk_pod4(1)).expect("cluster run succeeds");
    assert!(report.auto, "no pinned plan: the search must have run");
    let candidates = report.candidates.as_ref().expect("grid recorded");
    assert!(
        candidates.iter().filter(|c| c.step_total.is_some()).count() >= 4,
        "pod4 has several feasible layouts"
    );

    let e = &report.estimate;
    assert!(e.plan.chips_used() <= 4);
    assert_eq!(
        e.stages.len(),
        e.plan.pp as usize,
        "one timeline row per stage"
    );
    assert!(e.stages[0].start.is_zero());
    assert_eq!(
        e.stages.last().unwrap().end,
        e.step_total,
        "the timeline closes the step"
    );
    assert!((0.0..1.0).contains(&e.bubble_fraction));
    let eff = e.scaling_efficiency.expect("single-chip baseline feasible");
    assert!(eff > 0.0, "efficiency must be positive, got {eff}");
    // The winner is at least as fast as every feasible candidate.
    for c in candidates {
        if let Some(t) = c.step_total {
            assert!(e.step_total <= t, "{:?} beat the chosen plan", c.plan);
        }
    }
}

#[test]
fn cluster_reports_are_byte_identical_across_thread_counts() {
    let seq = runner::run_cluster(&shrunk_pod4(1)).expect("threads=1");
    let par = runner::run_cluster(&shrunk_pod4(8)).expect("threads=8");
    assert_eq!(
        serde_json::to_string(&seq).expect("serialize"),
        serde_json::to_string(&par).expect("serialize"),
        "auto-search report must be byte-identical at any thread count"
    );
}

/// The tp=pp=dp=1 equivalence: the cluster estimate of the trivial plan
/// *is* the single-chip SimReport — same engine path, zero collective
/// and pipeline overhead, efficiency exactly 1.
#[test]
fn unit_plan_pins_to_the_single_chip_sim_report() {
    let mut doc = scenario_doc("pod4_llama_tp_pp.json");
    set_path(&mut doc, "model.layers", serde::Value::U64(2)).unwrap();
    set_path(&mut doc, "workload.batch", serde::Value::U64(8)).unwrap();
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    set_path(
        &mut doc,
        "cluster.plan",
        serde_json::from_str(r#"{"tp": 1, "pp": 1, "dp": 1}"#).unwrap(),
    )
    .unwrap();
    let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let report = runner::run_cluster(&spec).expect("unit plan runs");
    assert!(!report.auto);
    assert_eq!(report.estimate.plan, ParallelismPlan::unit());

    // Reference: the same engine calls on a 1-chip carve of the pod.
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(8, 512), 1);
    let runner_hw = DesignRunner::new(presets::ipu_pod4().subpod(1)).with_threads(1);
    let catalog = runner_hw.catalog(&graph).expect("catalog");
    let outcome = runner_hw
        .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
        .expect("single-chip compile");

    assert_eq!(
        report.estimate.step_total, outcome.report.total,
        "ClusterReport total must pin to the single-chip SimReport"
    );
    assert_eq!(report.estimate.scaling_efficiency, Some(1.0));
    assert_eq!(report.estimate.bubble_fraction, 0.0);
}

#[test]
fn router_scenario_serves_every_request_under_every_policy() {
    let mut doc = scenario_doc("cluster_router_burst.json");
    set_path(&mut doc, "serving.trace.requests", serde::Value::U64(8)).unwrap();
    let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let report = runner::run_cluster(&spec).expect("router scenario runs");
    let rows = report.serving.as_ref().expect("cluster.serve is on");
    assert_eq!(rows.len(), 3, "three router policies compared");
    let mut names: Vec<&str> = rows.iter().map(|r| r.policy.name()).collect();
    names.dedup();
    assert_eq!(names, ["round_robin", "least_outstanding", "power_of_two"]);
    for row in rows {
        assert_eq!(row.completed, 8, "{}", row.policy);
        assert_eq!(row.per_group_requests.iter().sum::<usize>(), 8);
        assert_eq!(row.plan, ParallelismPlan::new(2, 1, 2));
    }

    // Thread-count invariance holds for the serving rows too.
    set_path(&mut doc, "cluster.threads", serde::Value::U64(8)).unwrap();
    let spec8: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let par = runner::run_cluster(&spec8).expect("threads=8");
    assert_eq!(
        serde_json::to_string(&report).expect("serialize"),
        serde_json::to_string(&par).expect("serialize"),
        "routed serving must be byte-identical at any thread count"
    );
}
