//! Golden guarantees of the cluster layer (acceptance checks of the
//! elk-cluster PR):
//!
//! 1. `scenarios/pod4_llama_tp_pp.json` (shrunk to test size via the
//!    sweep override machinery) auto-selects a `(tp, pp, dp)` plan and
//!    produces a `ClusterRunReport` with a per-stage timeline, bubble
//!    fraction, and scaling efficiency;
//! 2. the whole report — search included — is byte-identical at
//!    `threads = 1` vs `8`;
//! 3. a pinned `tp = pp = dp = 1` plan reproduces the single-chip
//!    `SimReport` total bit for bit (the cluster layer adds no drift);
//! 4. the router-comparison scenario serves every request under every
//!    policy, byte-identically across thread counts.

use elk::baselines::{Design, DesignRunner};
use elk::cluster::ParallelismPlan;
use elk::prelude::*;
use elk::spec::sweep::set_path;
use elk::spec::{runner, ScenarioSpec};

fn scenario_doc(name: &str) -> serde::Value {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    serde_json::from_str(&text).expect("valid scenario JSON")
}

fn shrunk_pod4(threads: u64) -> ScenarioSpec {
    let mut doc = scenario_doc("pod4_llama_tp_pp.json");
    set_path(&mut doc, "model.layers", serde::Value::U64(2)).unwrap();
    set_path(&mut doc, "workload.batch", serde::Value::U64(8)).unwrap();
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    set_path(&mut doc, "cluster.threads", serde::Value::U64(threads)).unwrap();
    serde::Deserialize::from_value(&doc).expect("still a valid scenario")
}

#[test]
fn pod4_scenario_auto_selects_a_plan_with_full_reporting() {
    let report = runner::run_cluster(&shrunk_pod4(1)).expect("cluster run succeeds");
    assert!(report.auto, "no pinned plan: the search must have run");
    let candidates = report.candidates.as_ref().expect("grid recorded");
    assert!(
        candidates.iter().filter(|c| c.step_total.is_some()).count() >= 4,
        "pod4 has several feasible layouts"
    );

    let e = &report.estimate;
    assert!(e.plan.chips_used() <= 4);
    assert_eq!(
        e.stages.len(),
        e.plan.pp as usize,
        "one timeline row per stage"
    );
    assert!(e.stages[0].start.is_zero());
    assert_eq!(
        e.stages.last().unwrap().end,
        e.step_total,
        "the timeline closes the step"
    );
    assert!((0.0..1.0).contains(&e.bubble_fraction));
    let eff = e.scaling_efficiency.expect("single-chip baseline feasible");
    assert!(eff > 0.0, "efficiency must be positive, got {eff}");
    // The winner is at least as fast as every feasible candidate.
    for c in candidates {
        if let Some(t) = c.step_total {
            assert!(e.step_total <= t, "{:?} beat the chosen plan", c.plan);
        }
    }
}

#[test]
fn cluster_reports_are_byte_identical_across_thread_counts() {
    let seq = runner::run_cluster(&shrunk_pod4(1)).expect("threads=1");
    let par = runner::run_cluster(&shrunk_pod4(8)).expect("threads=8");
    assert_eq!(
        serde_json::to_string(&seq).expect("serialize"),
        serde_json::to_string(&par).expect("serialize"),
        "auto-search report must be byte-identical at any thread count"
    );
}

/// The tp=pp=dp=1 equivalence: the cluster estimate of the trivial plan
/// *is* the single-chip SimReport — same engine path, zero collective
/// and pipeline overhead, efficiency exactly 1.
#[test]
fn unit_plan_pins_to_the_single_chip_sim_report() {
    let mut doc = scenario_doc("pod4_llama_tp_pp.json");
    set_path(&mut doc, "model.layers", serde::Value::U64(2)).unwrap();
    set_path(&mut doc, "workload.batch", serde::Value::U64(8)).unwrap();
    set_path(&mut doc, "workload.seq_len", serde::Value::U64(512)).unwrap();
    set_path(
        &mut doc,
        "cluster.plan",
        serde_json::from_str(r#"{"tp": 1, "pp": 1, "dp": 1}"#).unwrap(),
    )
    .unwrap();
    let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let report = runner::run_cluster(&spec).expect("unit plan runs");
    assert!(!report.auto);
    assert_eq!(report.estimate.plan, ParallelismPlan::unit());

    // Reference: the same engine calls on a 1-chip carve of the pod.
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(8, 512), 1);
    let runner_hw = DesignRunner::new(presets::ipu_pod4().subpod(1)).with_threads(1);
    let catalog = runner_hw.catalog(&graph).expect("catalog");
    let outcome = runner_hw
        .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
        .expect("single-chip compile");

    assert_eq!(
        report.estimate.step_total, outcome.report.total,
        "ClusterReport total must pin to the single-chip SimReport"
    );
    assert_eq!(report.estimate.scaling_efficiency, Some(1.0));
    assert_eq!(report.estimate.bubble_fraction, 0.0);
}

/// The two disaggregation scenarios pin their latency arithmetic
/// exactly: TTFT/TPOT percentiles to the last f64 bit, plus the event
/// count the kernel processed. These constants are history — a change
/// means the disaggregated engine's arithmetic changed, which must be
/// a conscious decision. The same runs are diffed `--threads 1` vs
/// `8` (byte-identical), mirroring the CI determinism step.
#[test]
fn disagg_scenarios_pin_percentiles_and_event_counts() {
    struct Pin {
        scenario: &'static str,
        completed: usize,
        ttft_p50: f64,
        ttft_p99: f64,
        tpot_mean: f64,
        tpot_p99: f64,
        sim_events: u64,
        prefill_tokens: u64,
        kv_moved: u64,
    }
    let pins = [
        Pin {
            scenario: "disagg_longprompt.json",
            completed: 48,
            ttft_p50: 0.140_117_256_739_309_5,
            ttft_p99: 0.383_279_313_720_312_4,
            tpot_mean: 4.717_195_106_947_954_3e-4,
            tpot_p99: 5.146_112_732_666_96e-4,
            sim_events: 1501,
            prefill_tokens: 17_790,
            kv_moved: 364_339_200,
        },
        Pin {
            scenario: "disagg_chat.json",
            completed: 64,
            ttft_p50: 0.036_213_996_757_350_3,
            ttft_p99: 0.080_502_287_511_067_67,
            tpot_mean: 5.112_317_365_324_883e-4,
            tpot_p99: 7.084_633_093_149_092e-4,
            sim_events: 824,
            prefill_tokens: 10_792,
            kv_moved: 221_020_160,
        },
    ];
    for pin in pins {
        let doc = scenario_doc(pin.scenario);
        let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid scenario");
        let report = runner::run_cluster(&spec).expect("disagg scenario runs");
        let rows = report.disagg.as_ref().expect("cluster.disaggregate is on");
        assert_eq!(rows.len(), 1, "one design x one policy");
        let r = &rows[0];
        let ctx = pin.scenario;
        assert_eq!(r.completed, pin.completed, "{ctx}");
        assert_eq!(r.ttft.p50.as_secs(), pin.ttft_p50, "{ctx}: ttft p50");
        assert_eq!(r.ttft.p99.as_secs(), pin.ttft_p99, "{ctx}: ttft p99");
        assert_eq!(r.tpot.mean.as_secs(), pin.tpot_mean, "{ctx}: tpot mean");
        assert_eq!(r.tpot.p99.as_secs(), pin.tpot_p99, "{ctx}: tpot p99");
        assert_eq!(r.sim_events, pin.sim_events, "{ctx}: kernel event count");
        assert_eq!(r.prefill_tokens, pin.prefill_tokens, "{ctx}");
        assert_eq!(r.kv_moved.get(), pin.kv_moved, "{ctx}: KV bytes moved");

        let mut doc8 = doc.clone();
        set_path(&mut doc8, "cluster.threads", serde::Value::U64(8)).unwrap();
        let spec8: ScenarioSpec = serde::Deserialize::from_value(&doc8).expect("valid");
        let par = runner::run_cluster(&spec8).expect("threads=8");
        assert_eq!(
            serde_json::to_string(&report).expect("serialize"),
            serde_json::to_string(&par).expect("serialize"),
            "{ctx}: disagg report must be byte-identical at any thread count"
        );
    }
}

/// The degenerate differential on the checked-in golden trace: the
/// disaggregated engine with handoff bytes zeroed (`shared_chips`),
/// chunking off, and identical pool plans must reproduce the colocated
/// engine bit for bit — same outcomes, same percentiles — on a trace
/// whose bytes are themselves pinned by `trace_golden.rs`.
#[test]
fn degenerate_disagg_reproduces_colocated_on_the_golden_trace() {
    use elk::cluster::{ClusterServeConfig, ClusterServingSim, DisaggConfig, DisaggServingSim};
    use elk::serve::RouterPolicy;
    use elk::trace::TraceFile;

    let text = std::fs::read_to_string(format!(
        "{}/traces/golden_small.jsonl",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("golden trace exists");
    let trace = TraceFile::parse(&text)
        .expect("golden trace parses")
        .to_request_trace();

    let mut model = zoo::llama2_13b();
    model.layers = 2;
    let plan = ParallelismPlan::new(1, 1, 2);
    let batch = BatchConfig {
        max_batch: 8,
        max_prefill_tokens: 2048,
        seq_buckets: SeqBuckets::new(256, 2048),
        bucket_batch: true,
    };

    let mut colo = ClusterServingSim::new(
        presets::ipu_pod4(),
        ClusterServeConfig {
            batch,
            ..ClusterServeConfig::new(model.clone(), plan)
        },
    )
    .expect("colocated config");
    let mut disagg = DisaggServingSim::new(
        presets::ipu_pod4(),
        DisaggConfig {
            batch,
            shared_chips: true,
            ..DisaggConfig::new(model, plan, plan)
        },
    )
    .expect("degenerate disagg config");

    for policy in RouterPolicy::all() {
        let c = colo
            .run(Design::ElkFull, policy, &trace)
            .expect("colocated");
        let d = disagg.run(Design::ElkFull, policy, &trace).expect("disagg");
        assert_eq!(
            d.outcomes, c.outcomes,
            "{policy}: outcomes must be bit-identical"
        );
        assert_eq!(
            serde_json::to_string(&d.ttft).unwrap(),
            serde_json::to_string(&c.ttft).unwrap(),
            "{policy}: TTFT stats must serialize identically"
        );
        assert_eq!(
            serde_json::to_string(&d.tpot).unwrap(),
            serde_json::to_string(&c.tpot).unwrap(),
            "{policy}: TPOT stats must serialize identically"
        );
        assert_eq!(d.makespan, c.makespan, "{policy}");
        assert_eq!(d.prefill_steps, c.prefill_steps, "{policy}");
        assert_eq!(d.decode_steps, c.decode_steps, "{policy}");
        assert!(d.kv_moved.is_zero(), "{policy}: shared chips move no KV");
    }
}

#[test]
fn router_scenario_serves_every_request_under_every_policy() {
    let mut doc = scenario_doc("cluster_router_burst.json");
    set_path(&mut doc, "serving.trace.requests", serde::Value::U64(8)).unwrap();
    let spec: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let report = runner::run_cluster(&spec).expect("router scenario runs");
    let rows = report.serving.as_ref().expect("cluster.serve is on");
    assert_eq!(rows.len(), 3, "three router policies compared");
    let mut names: Vec<&str> = rows.iter().map(|r| r.policy.name()).collect();
    names.dedup();
    assert_eq!(names, ["round_robin", "least_outstanding", "power_of_two"]);
    for row in rows {
        assert_eq!(row.completed, 8, "{}", row.policy);
        assert_eq!(row.per_group_requests.iter().sum::<usize>(), 8);
        assert_eq!(row.plan, ParallelismPlan::new(2, 1, 2));
        // All 8 arrivals are scheduled up front, so the heap peaks at
        // the full trace before the first dispatch drains it.
        assert_eq!(row.peak_event_queue_len, 8, "{}", row.policy);
    }

    // Thread-count invariance holds for the serving rows too.
    set_path(&mut doc, "cluster.threads", serde::Value::U64(8)).unwrap();
    let spec8: ScenarioSpec = serde::Deserialize::from_value(&doc).expect("valid");
    let par = runner::run_cluster(&spec8).expect("threads=8");
    assert_eq!(
        serde_json::to_string(&report).expect("serialize"),
        serde_json::to_string(&par).expect("serialize"),
        "routed serving must be byte-identical at any thread count"
    );
}
