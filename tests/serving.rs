//! End-to-end serving-simulator checks through the `elk` facade:
//! request accounting, design ordering, plan-cache reuse, and seeded
//! byte-identical determinism.

use elk::baselines::Design;
use elk::prelude::*;

/// Doctest-sized model: the serving dynamics (queueing, batching,
/// bucketing) are independent of layer count.
fn model() -> TransformerConfig {
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    cfg
}

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(model(), 4);
    cfg.batch = BatchConfig {
        max_batch: 8,
        max_prefill_tokens: 2048,
        seq_buckets: SeqBuckets::new(256, 2048),
        bucket_batch: true,
    };
    cfg
}

fn trace(seed: u64) -> RequestTrace {
    TraceConfig {
        seed,
        requests: 24,
        arrivals: ArrivalProcess::Bursty {
            rate_rps: 150.0,
            burst_factor: 3.0,
            period_s: 0.2,
            duty: 0.25,
        },
        prompt_len: LengthDist::Bimodal {
            short: (150, 500),
            long: (900, 1800),
            long_weight: 0.4,
        },
        output_len: LengthDist::Uniform { lo: 4, hi: 16 },
    }
    .generate()
}

#[test]
fn serves_every_request_with_consistent_timelines() {
    let mut sim = ServingSim::new(presets::ipu_pod4(), config());
    let t = trace(1);
    let report = sim.run(Design::ElkFull, &t).unwrap();
    assert_eq!(report.completed, t.len());
    assert!(report.makespan >= t.duration());
    for o in &report.outcomes {
        assert!(o.first_token > o.arrival, "TTFT must be positive");
        assert!(o.completion >= o.first_token);
        assert!(o.e2e() >= o.ttft());
    }
    // Queue-depth samples are time-ordered.
    for w in report.queue_depth.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
    assert!(report.prefill_steps > 0 && report.decode_steps > 0);
}

#[test]
fn design_ordering_survives_request_level_dynamics() {
    // The Fig. 17 endpoints must hold end to end: the roofline cannot
    // lose to full Elk, and full Elk cannot lose to the Basic baseline.
    let mut sim = ServingSim::new(presets::ipu_pod4(), config());
    let t = trace(2);
    let slack = 1.02;
    let tpot = |d: Design, sim: &mut ServingSim| sim.run(d, &t).unwrap().tpot.mean.as_secs();
    let basic = tpot(Design::Basic, &mut sim);
    let full = tpot(Design::ElkFull, &mut sim);
    let ideal = tpot(Design::Ideal, &mut sim);
    assert!(ideal <= full * slack, "Ideal {ideal} > ELK-Full {full}");
    assert!(full <= basic * slack, "ELK-Full {full} > Basic {basic}");
}

#[test]
fn plan_cache_hits_on_repeated_buckets_and_across_designs() {
    let mut sim = ServingSim::new(presets::ipu_pod4(), config());
    let t = trace(3);
    let first = sim.run(Design::ElkFull, &t).unwrap();
    assert!(
        first.cache.hits > 0,
        "repeated seq buckets must hit within one run: {:?}",
        first.cache
    );
    assert!(first.cache.misses > 0);
    // A second design recompiles plans but shares every catalog, and a
    // repeat run compiles nothing at all.
    let other = sim.run(Design::Basic, &t).unwrap();
    assert!(other.cache.misses > 0);
    let repeat = sim.run(Design::ElkFull, &t).unwrap();
    assert_eq!(repeat.cache.misses, 0, "repeat run must be fully cached");
    assert_eq!(repeat.makespan, first.makespan);
}

#[test]
fn same_trace_and_seed_give_byte_identical_reports() {
    // Fresh simulator + fresh trace from the same seeds: the rendered
    // report must match byte for byte.
    let render = || {
        let mut sim = ServingSim::new(presets::ipu_pod4(), config());
        let t = trace(4);
        let mut out = String::new();
        for design in [Design::Basic, Design::ElkFull, Design::Ideal] {
            out.push_str(&sim.run(design, &t).unwrap().to_string());
            out.push('\n');
        }
        out
    };
    let a = render();
    let b = render();
    assert!(!a.is_empty());
    assert_eq!(a, b, "serving reports must be deterministic");
}

#[test]
fn replicas_halve_the_queue() {
    let t = trace(5);
    let mut one = ServingSim::new(presets::ipu_pod4(), config());
    let mut two = ServingSim::new(presets::ipu_pod4(), config().with_replicas(2));
    let r1 = one.run(Design::ElkFull, &t).unwrap();
    let r2 = two.run(Design::ElkFull, &t).unwrap();
    assert_eq!(r2.completed, t.len());
    assert!(r2.e2e.mean <= r1.e2e.mean * 1.01);
    assert!(r2.max_queue_depth <= r1.max_queue_depth);
}

#[test]
fn serving_is_thread_count_invariant() {
    // Concurrent replica loops + single-flight compile fan-out must
    // reproduce the sequential run exactly: outcomes, latency
    // percentiles, queue depths, makespan. Only the cache hit/miss
    // split may shift (a warmed design's first lookup becomes a hit),
    // so it is blanked before the whole-report comparison.
    let t = trace(6);
    let mut seq = ServingSim::new(presets::ipu_pod4(), config().with_replicas(2));
    let mut par = ServingSim::new(
        presets::ipu_pod4(),
        config().with_replicas(2).with_threads(8),
    );
    for design in [Design::ElkFull, Design::Static, Design::Basic] {
        let mut a = seq.run(design, &t).unwrap();
        let mut b = par.run(design, &t).unwrap();
        a.cache = elk::serve::CacheStats::default();
        b.cache = elk::serve::CacheStats::default();
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "{design}: 8-thread serving run diverged from sequential"
        );
    }
}
