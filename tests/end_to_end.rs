//! End-to-end integration: every zoo model compiles and simulates on the
//! paper's platform, respecting all hardware rules.

use elk::baselines::{Design, DesignRunner};
use elk::prelude::*;

/// A small but structurally complete variant of each zoo LLM.
fn small(mut cfg: TransformerConfig, layers: u32) -> TransformerConfig {
    cfg.layers = layers;
    cfg
}

#[test]
fn all_models_compile_and_simulate() {
    let system = presets::ipu_pod4();
    let compiler = Compiler::new(system.clone());
    for cfg in [
        small(zoo::llama2_13b(), 3),
        small(zoo::gemma2_27b(), 3),
        small(zoo::opt_30b(), 3),
        small(zoo::llama2_70b(), 3),
    ] {
        let graph = cfg.build(Workload::decode(16, 1024), 4);
        let plan = compiler.compile(&graph).expect("compile");
        plan.program.validate().expect("valid program");
        assert_eq!(plan.estimate.capacity_violations, 0, "{}", cfg.name);
        let report = simulate(&plan.program, &system, &SimOptions::default());
        assert_eq!(report.capacity_violations, 0, "{}", cfg.name);
        assert!(report.total > Seconds::ZERO);
        // The makespan decomposition covers the makespan.
        let sum = report.buckets.total().as_secs();
        assert!((sum - report.total.as_secs()).abs() < 1e-9 * sum.max(1.0));
    }
}

#[test]
fn dit_compiles_on_single_chip() {
    let system = presets::single_chip();
    let mut dit = zoo::dit_xl();
    dit.layers = 4;
    let graph = dit.build(Workload::decode(4, 256), 1);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &system, &SimOptions::default());
    assert_eq!(report.capacity_violations, 0);
    // Diffusion is compute-bound: HBM utilization should be low.
    assert!(report.hbm_util < 0.5, "DiT hbm util {}", report.hbm_util);
}

#[test]
fn training_forward_compiles() {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::training_forward(2, 1024), 4);
    let plan = Compiler::new(system.clone())
        .compile(&graph)
        .expect("compile");
    let report = simulate(&plan.program, &system, &SimOptions::default());
    assert_eq!(report.capacity_violations, 0);
    // Training is compute-bound: achieved TFLOPS far above decode levels.
    assert!(report.achieved.as_tera() > 20.0);
}

#[test]
fn compilation_is_deterministic() {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::opt_30b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(16, 512), 4);
    let a = Compiler::new(system.clone()).compile(&graph).expect("a");
    let b = Compiler::new(system.clone()).compile(&graph).expect("b");
    assert_eq!(a.program, b.program);
    assert_eq!(a.schedule.order, b.schedule.order);
    let ra = simulate(&a.program, &system, &SimOptions::default());
    let rb = simulate(&b.program, &system, &SimOptions::default());
    assert_eq!(ra.total, rb.total);
}

#[test]
fn runner_and_compiler_agree_on_elk_full() {
    let system = presets::ipu_pod4();
    let mut cfg = zoo::llama2_13b();
    cfg.layers = 2;
    let graph = cfg.build(Workload::decode(16, 1024), 4);
    let direct = Compiler::new(system.clone())
        .compile(&graph)
        .expect("direct");
    let runner = DesignRunner::new(system);
    let catalog = runner.catalog(&graph).expect("catalog");
    let via_runner = runner
        .run(Design::ElkFull, &graph, &catalog, &SimOptions::default())
        .expect("runner");
    assert_eq!(direct.program, via_runner.program);
}
